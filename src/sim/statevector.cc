#include "sim/statevector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/unitary.hh"
#include "sim/kernel_dispatch.hh"

namespace triq
{

// Kernel loops below run through kernels::shard: serial by default
// (kernelThreads_ == 1 touches no pool and plans nothing), sharded
// into disjoint amplitude ranges on the process pool when the owner
// enabled kernel threading. Each body performs identical per-amplitude
// arithmetic wherever its range boundaries fall, so results are
// bit-identical for every thread count. Cumulative scans
// (sampleMeasurement, dominantBasisState, normSquared, fidelityWith)
// stay serial: their accumulation order is part of the sampling
// contract.

StateVector::StateVector(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > maxQubits())
        fatal("StateVector: qubit count ", num_qubits, " outside [1, ",
              maxQubits(), "]");
    amps_.assign(uint64_t{1} << num_qubits, Cplx(0, 0));
    amps_[0] = Cplx(1, 0);
}

void
StateVector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Cplx(0, 0));
    amps_[0] = Cplx(1, 0);
}

Cplx
StateVector::amplitude(uint64_t basis) const
{
    if (basis >= dim())
        panic("StateVector::amplitude: basis out of range");
    return amps_[basis];
}

double
StateVector::probability(uint64_t basis) const
{
    return std::norm(amplitude(basis));
}

void
StateVector::checkQubit(int q) const
{
    if (q < 0 || q >= numQubits_)
        panic("StateVector: qubit ", q, " out of range [0,", numQubits_,
              ")");
}

void
StateVector::applyMatrix1(const Matrix &m, int q)
{
    checkQubit(q);
    if (m.rows() != 2 || m.cols() != 2)
        panic("applyMatrix1: matrix is not 2x2");
    const uint64_t bit = uint64_t{1} << q;
    const Cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
    kernels::shard(kernelThreads_, dim(), 8, static_cast<double>(dim()),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i) {
                           if (i & bit)
                               continue;
                           Cplx a0 = amps_[i];
                           Cplx a1 = amps_[i | bit];
                           amps_[i] = m00 * a0 + m01 * a1;
                           amps_[i | bit] = m10 * a0 + m11 * a1;
                       }
                   });
}

void
StateVector::applyMatrix2(const Matrix &m, int q0, int q1)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        panic("applyMatrix2: identical qubits");
    if (m.rows() != 4 || m.cols() != 4)
        panic("applyMatrix2: matrix is not 4x4");
    const uint64_t b0 = uint64_t{1} << q0;
    const uint64_t b1 = uint64_t{1} << q1;
    Cplx mm[4][4];
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            mm[r][c] = m(r, c);
    kernels::shard(
        kernelThreads_, dim(), 8, 2.0 * dim(),
        [&](uint64_t lo, uint64_t hi) {
            for (uint64_t i = lo; i < hi; ++i) {
                if (i & (b0 | b1))
                    continue;
                const uint64_t idx[4] = {i, i | b0, i | b1,
                                         i | b0 | b1};
                Cplx a[4];
                for (int k = 0; k < 4; ++k)
                    a[k] = amps_[idx[k]];
                for (int r = 0; r < 4; ++r) {
                    Cplx v(0, 0);
                    for (int c = 0; c < 4; ++c)
                        v += mm[r][c] * a[c];
                    amps_[idx[r]] = v;
                }
            }
        });
}

void
StateVector::applyX(int q)
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    kernels::shard(kernelThreads_, dim(), 8, 0.75 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i)
                           if (!(i & bit))
                               std::swap(amps_[i], amps_[i | bit]);
                   });
}

void
StateVector::applyY(int q)
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    const Cplx i1(0, 1);
    kernels::shard(kernelThreads_, dim(), 8, static_cast<double>(dim()),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i) {
                           if (i & bit)
                               continue;
                           Cplx a0 = amps_[i];
                           Cplx a1 = amps_[i | bit];
                           amps_[i] = -i1 * a1;
                           amps_[i | bit] = i1 * a0;
                       }
                   });
}

void
StateVector::applyZ(int q)
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    kernels::shard(kernelThreads_, dim(), 8, 0.75 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i)
                           if (i & bit)
                               amps_[i] = -amps_[i];
                   });
}

void
StateVector::applyPhase1(int q, Cplx phase)
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    kernels::shard(kernelThreads_, dim(), 8, 0.75 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i)
                           if (i & bit)
                               amps_[i] *= phase;
                   });
}

void
StateVector::applyRz(int q, double theta)
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    const Cplx plo = std::exp(Cplx(0, -theta / 2));
    const Cplx phi = std::exp(Cplx(0, theta / 2));
    kernels::shard(kernelThreads_, dim(), 8, static_cast<double>(dim()),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i)
                           amps_[i] *= (i & bit) ? phi : plo;
                   });
}

void
StateVector::applyCnot(int control, int target)
{
    checkQubit(control);
    checkQubit(target);
    if (control == target)
        panic("applyCnot: identical qubits");
    const uint64_t cb = uint64_t{1} << control;
    const uint64_t tb = uint64_t{1} << target;
    kernels::shard(kernelThreads_, dim(), 8, 0.75 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i)
                           if ((i & cb) && !(i & tb))
                               std::swap(amps_[i], amps_[i | tb]);
                   });
}

void
StateVector::applyCz(int a, int b)
{
    checkQubit(a);
    checkQubit(b);
    if (a == b)
        panic("applyCz: identical qubits");
    const uint64_t mask = (uint64_t{1} << a) | (uint64_t{1} << b);
    kernels::shard(kernelThreads_, dim(), 8, 0.75 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i)
                           if ((i & mask) == mask)
                               amps_[i] = -amps_[i];
                   });
}

void
StateVector::applyCphase(int a, int b, double lambda)
{
    checkQubit(a);
    checkQubit(b);
    if (a == b)
        panic("applyCphase: identical qubits");
    const uint64_t mask = (uint64_t{1} << a) | (uint64_t{1} << b);
    const Cplx phase = std::exp(Cplx(0, lambda));
    kernels::shard(kernelThreads_, dim(), 8, 0.75 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i)
                           if ((i & mask) == mask)
                               amps_[i] *= phase;
                   });
}

void
StateVector::applySwap(int a, int b)
{
    checkQubit(a);
    checkQubit(b);
    if (a == b)
        panic("applySwap: identical qubits");
    const uint64_t ba = uint64_t{1} << a;
    const uint64_t bb = uint64_t{1} << b;
    kernels::shard(
        kernelThreads_, dim(), 8, 0.75 * dim(),
        [&](uint64_t lo, uint64_t hi) {
            for (uint64_t i = lo; i < hi; ++i)
                if ((i & ba) && !(i & bb))
                    std::swap(amps_[i], amps_[(i & ~ba) | bb]);
        });
}

// applyFused1/2/3 and applyDiagonal — the cache-blocked kernels used by
// the gate-fusion pre-pass — live in fused_kernels.cc so the build can
// give them tuned optimization flags without affecting the per-gate
// baseline paths above.

void
StateVector::applyGate(const Gate &g)
{
    if (g.kind == GateKind::Barrier || g.kind == GateKind::I)
        return;
    if (g.kind == GateKind::Measure)
        panic("StateVector::applyGate: Measure is not unitary");
    switch (g.arity()) {
      case 1:
        switch (g.kind) {
          case GateKind::X:
            applyX(g.qubit(0));
            return;
          case GateKind::Y:
            applyY(g.qubit(0));
            return;
          case GateKind::Z:
            applyZ(g.qubit(0));
            return;
          case GateKind::S:
            applyPhase1(g.qubit(0), Cplx(0, 1));
            return;
          case GateKind::Sdg:
            applyPhase1(g.qubit(0), Cplx(0, -1));
            return;
          case GateKind::T:
            applyPhase1(g.qubit(0), std::exp(Cplx(0, kPi / 4)));
            return;
          case GateKind::Tdg:
            applyPhase1(g.qubit(0), std::exp(Cplx(0, -kPi / 4)));
            return;
          case GateKind::U1:
            applyPhase1(g.qubit(0), std::exp(Cplx(0, g.params[0])));
            return;
          case GateKind::Rz:
            applyRz(g.qubit(0), g.params[0]);
            return;
          default:
            applyMatrix1(gateMatrix(g), g.qubit(0));
            return;
        }
      case 2:
        switch (g.kind) {
          case GateKind::Cnot:
            applyCnot(g.qubit(0), g.qubit(1));
            return;
          case GateKind::Cz:
            applyCz(g.qubit(0), g.qubit(1));
            return;
          case GateKind::Cphase:
            applyCphase(g.qubit(0), g.qubit(1), g.params[0]);
            return;
          case GateKind::Swap:
            applySwap(g.qubit(0), g.qubit(1));
            return;
          default:
            applyMatrix2(gateMatrix(g), g.qubit(0), g.qubit(1));
            return;
        }
      case 3: {
        // Composite gates are rare post-decomposition; expand via two
        // levels: apply as a controlled operation by direct permutation.
        const Matrix m = gateMatrix(g);
        const uint64_t b[3] = {uint64_t{1} << g.qubit(0),
                               uint64_t{1} << g.qubit(1),
                               uint64_t{1} << g.qubit(2)};
        const uint64_t mask = b[0] | b[1] | b[2];
        kernels::shard(
            kernelThreads_, dim(), 8, 4.0 * dim(),
            [&](uint64_t lo, uint64_t hi) {
                for (uint64_t i = lo; i < hi; ++i) {
                    if (i & mask)
                        continue;
                    uint64_t idx[8];
                    Cplx a[8];
                    for (int k = 0; k < 8; ++k) {
                        uint64_t j = i;
                        for (int t = 0; t < 3; ++t)
                            if (k & (1 << t))
                                j |= b[t];
                        idx[k] = j;
                        a[k] = amps_[j];
                    }
                    for (int r = 0; r < 8; ++r) {
                        Cplx v(0, 0);
                        for (int c = 0; c < 8; ++c)
                            v += m(r, c) * a[c];
                        amps_[idx[r]] = v;
                    }
                }
            });
        return;
      }
      default:
        panic("StateVector::applyGate: unexpected arity");
    }
}

void
StateVector::applyCircuit(const Circuit &c)
{
    if (c.numQubits() != numQubits_)
        fatal("StateVector::applyCircuit: register width mismatch");
    for (const auto &g : c.gates()) {
        if (g.kind == GateKind::Measure)
            continue;
        applyGate(g);
    }
}

uint64_t
StateVector::sampleMeasurement(Rng &rng) const
{
    return sampleMeasurement(rng.uniform());
}

uint64_t
StateVector::sampleMeasurement(double r) const
{
    double acc = 0.0;
    for (uint64_t i = 0; i < dim(); ++i) {
        acc += std::norm(amps_[i]);
        if (r < acc)
            return i;
    }
    return dim() - 1; // Numerical slack: land on the last state.
}

uint64_t
StateVector::dominantBasisState(double *prob_out) const
{
    uint64_t best = 0;
    double bestp = -1.0;
    for (uint64_t i = 0; i < dim(); ++i) {
        double p = std::norm(amps_[i]);
        if (p > bestp) {
            bestp = p;
            best = i;
        }
    }
    if (prob_out)
        *prob_out = bestp;
    return best;
}

double
StateVector::normSquared() const
{
    double s = 0.0;
    for (const auto &a : amps_)
        s += std::norm(a);
    return s;
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    if (other.dim() != dim())
        panic("StateVector::fidelityWith: size mismatch");
    Cplx ip(0, 0);
    for (uint64_t i = 0; i < dim(); ++i)
        ip += std::conj(amps_[i]) * other.amps_[i];
    return std::norm(ip);
}

std::vector<double>
idealMeasurementDistribution(const Circuit &c)
{
    StateVector sv(c.numQubits());
    sv.applyCircuit(c);
    std::vector<ProgQubit> mq = c.measuredQubits();
    if (mq.empty())
        fatal("idealMeasurementDistribution: circuit measures nothing");
    std::vector<double> out(uint64_t{1} << mq.size(), 0.0);
    for (uint64_t i = 0; i < sv.dim(); ++i) {
        double p = sv.probability(i);
        if (p == 0.0)
            continue;
        uint64_t key = 0;
        for (size_t k = 0; k < mq.size(); ++k)
            key |= ((i >> mq[k]) & 1) << k;
        out[key] += p;
    }
    return out;
}

} // namespace triq
