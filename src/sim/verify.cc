#include "sim/verify.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "sim/compact.hh"
#include "sim/statevector.hh"

namespace triq
{

VerificationResult
verifyCompilation(const Circuit &program, const CompileResult &compiled,
                  double tolerance)
{
    std::vector<ProgQubit> prog_measured = program.measuredQubits();
    if (prog_measured.empty())
        fatal("verifyCompilation: program measures no qubits");

    std::vector<double> want = idealMeasurementDistribution(program);

    // The hardware circuit measures hardware qubits in ascending order;
    // program qubit prog_measured[k] ended at finalMap[prog_measured[k]].
    CompactCircuit cc = compactCircuit(compiled.hwCircuit);
    std::vector<double> got_raw = idealMeasurementDistribution(cc.circuit);
    std::vector<ProgQubit> hw_measured =
        compiled.hwCircuit.measuredQubits();
    if (hw_measured.size() != prog_measured.size())
        fatal("verifyCompilation: program measures ",
              prog_measured.size(), " qubits, compiled circuit ",
              hw_measured.size());

    // Position of each program-measured bit inside the hw key.
    std::vector<size_t> pos(prog_measured.size());
    for (size_t k = 0; k < prog_measured.size(); ++k) {
        HwQubit h = compiled.finalMap[static_cast<size_t>(
            prog_measured[k])];
        auto it = std::find(hw_measured.begin(), hw_measured.end(), h);
        if (it == hw_measured.end())
            fatal("verifyCompilation: program qubit ", prog_measured[k],
                  " (hardware ", h, ") is not measured in the output");
        pos[k] = static_cast<size_t>(it - hw_measured.begin());
    }

    std::vector<double> got(want.size(), 0.0);
    for (uint64_t key = 0; key < got_raw.size(); ++key) {
        uint64_t mapped = 0;
        for (size_t k = 0; k < pos.size(); ++k)
            mapped |= ((key >> pos[k]) & 1) << k;
        got[mapped] += got_raw[key];
    }

    VerificationResult res;
    double tv = 0.0, maxdev = 0.0;
    for (size_t i = 0; i < want.size(); ++i) {
        double d = std::abs(want[i] - got[i]);
        maxdev = std::max(maxdev, d);
        tv += d;
    }
    res.maxDeviation = maxdev;
    res.totalVariation = 0.5 * tv;
    res.equivalent = maxdev <= tolerance;
    return res;
}

} // namespace triq
