#include "sim/sim_cost.hh"

#include <algorithm>

namespace triq
{

namespace
{

constexpr uint64_t kSaturated = ~uint64_t{0};

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    return a > kSaturated - b ? kSaturated : a + b;
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return a > kSaturated / b ? kSaturated : a * b;
}

/** 2^`exp` bytes, saturated. */
uint64_t
satShift(int exp)
{
    return exp >= 64 ? kSaturated : uint64_t{1} << exp;
}

/**
 * Mirror of the executor's checkpoint budget (sim/executor.cc): ideal
 * snapshots are spaced to fit this cap, and circuits whose single
 * state exceeds it get no checkpoints at all.
 */
constexpr uint64_t kCheckpointBudgetBytes = 64ull << 20;

} // namespace

uint64_t
stateVectorBytes(int qubits)
{
    if (qubits < 1)
        return 0;
    return satShift(qubits + 4); // 2^n amplitudes x 16 B
}

uint64_t
densityMatrixBytes(int qubits)
{
    if (qubits < 1)
        return 0;
    return satShift(2 * qubits + 4); // 4^n entries x 16 B
}

uint64_t
predictSimulationBytes(int active_qubits, int workers)
{
    uint64_t per_state = stateVectorBytes(active_qubits);
    uint64_t w = static_cast<uint64_t>(std::max(workers, 1));
    uint64_t states = satMul(per_state, satAdd(1, satMul(2, w)));
    uint64_t ckpts =
        per_state < kCheckpointBudgetBytes ? kCheckpointBudgetBytes : 0;
    return satAdd(states, ckpts);
}

uint64_t
predictLowMemSimulationBytes(int active_qubits)
{
    return satMul(stateVectorBytes(active_qubits), 2);
}

} // namespace triq
