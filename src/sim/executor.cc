#include "sim/executor.hh"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/resource.hh"
#include "common/rng.hh"
#include "common/sched.hh"
#include "common/thread_pool.hh"
#include "core/esp.hh"
#include "sim/compact.hh"
#include "sim/fusion.hh"
#include "sim/noise.hh"
#include "sim/sim_cost.hh"
#include "sim/statevector.hh"

namespace triq
{

namespace
{

/** Trials per RNG chunk; part of the sampling contract (see header). */
constexpr int kDefaultChunkSize = 64;

/** Milliseconds since `t0`. */
double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Execute `items` indexed work items per the scheduler's plan: the
 * true serial loop when the plan says serial (no pool is touched),
 * otherwise batched ranges on the shared process pool. The RNG
 * chunking is fixed upstream of this choice, so the plan can never
 * change a result — only its wall-clock time.
 */
void
runPerPlan(const SchedDecision &dec, int items,
           const std::function<void(int)> &fn)
{
    if (!dec.threaded) {
        for (int i = 0; i < items; ++i)
            fn(i);
        return;
    }
    ThreadPool &pool = processPool(dec.threads);
    parallelForRanges(pool, items, dec.itemsPerTask,
                      [&fn](int lo, int hi) {
                          for (int i = lo; i < hi; ++i)
                              fn(i);
                      });
}

/** Histograms this narrow use a flat per-chunk count vector. */
constexpr size_t kFlatHistogramBits = 12;

/** Snapshot memory budget for automatic checkpoint spacing. */
constexpr uint64_t kCheckpointBudgetBytes = 64ull << 20;

/** Map a sampled basis index to the measured-qubit key. */
uint64_t
outcomeKey(uint64_t basis, const std::vector<ProgQubit> &measured)
{
    uint64_t key = 0;
    for (size_t k = 0; k < measured.size(); ++k)
        key |= ((basis >> measured[k]) & 1) << k;
    return key;
}

/** An ideal-evolution snapshot taken after `gatesApplied` gates. */
struct Checkpoint
{
    int gatesApplied;
    StateVector state;
};

/** Read-only per-call context shared by every chunk. */
struct TrajectoryContext
{
    const Circuit *circuit; // compact circuit
    const std::vector<ErrorSite> *sites;
    const std::vector<int> *injOrder; // site indices by (gateIdx, index)
    const std::vector<ProgQubit> *measured;
    const std::vector<double> *roErr;
    const StateVector *ideal;
    const std::vector<Checkpoint> *checkpoints; // ascending gatesApplied
    const FusedProgram *fused;                  // null = replay plain gates
    uint64_t correctOutcome;
    bool flatHistogram;

    /**
     * Kernel-thread setting for trajectory states (see
     * StateVector::setKernelThreads). Must be 1 whenever the
     * trajectory fan-out itself is threaded: chunk workers live on the
     * shared process pool and pool jobs must not submit to it. The
     * fan-out planner sets this per phase.
     */
    int kernelThreads = 1;
};

/** Per-chunk accumulator; merged into the result in chunk order. */
struct ChunkStats
{
    int successes = 0;
    int simulated = 0;
    std::vector<int> flat;
    std::unordered_map<uint64_t, int> sparse;
};

/**
 * Apply the unitary gates in [from, to) — through the fused program
 * when fusion is on, gate by gate otherwise.
 */
void
advanceState(const TrajectoryContext &ctx, StateVector &sv, int from,
             int to)
{
    if (ctx.fused != nullptr) {
        ctx.fused->apply(sv, from, to);
        return;
    }
    for (int gi = from; gi < to; ++gi) {
        const Gate &g = ctx.circuit->gate(gi);
        if (g.kind != GateKind::Measure)
            sv.applyGate(g);
    }
}

/**
 * Draw the Pauli choice for a fired site. Idle sites deterministically
 * inject Z (pure dephasing) and consume no randomness; 1Q sites draw a
 * uniform X/Y/Z; 2Q sites draw a uniform non-identity two-qubit Pauli
 * (index 1..15 in base 4). The returned code fits in 5 bits.
 */
int
drawPauliCode(Rng &rng, const ErrorSite &s)
{
    if (s.idle)
        return 0;
    if (s.q1 == -1)
        return rng.uniformInt(3);
    return 1 + rng.uniformInt(15);
}

/** Inject the Pauli a (site, code) pair denotes. */
void
injectPauli(StateVector &sv, const ErrorSite &s, int code)
{
    auto pauli1 = [&](int q, int which) {
        switch (which) {
          case 0:
            sv.applyX(q);
            break;
          case 1:
            sv.applyY(q);
            break;
          default:
            sv.applyZ(q);
            break;
        }
    };
    if (s.idle) {
        sv.applyZ(s.q0);
        return;
    }
    if (s.q1 == -1) {
        pauli1(s.q0, code);
        return;
    }
    int p0 = code & 3, p1 = (code >> 2) & 3;
    if (p0 != 0)
        pauli1(s.q0, p0 - 1);
    if (p1 != 0)
        pauli1(s.q1, p1 - 1);
}

/**
 * Seek the last ideal-prefix checkpoint at or before `first_gate` and
 * load it into `sv` (or reset to |0...0>). The prefix is fault-free, so
 * its evolution is identical to a full replay's.
 * @return Number of gates already applied to `sv`.
 */
int
seekCheckpoint(const TrajectoryContext &ctx, StateVector &sv,
               int first_gate)
{
    const std::vector<Checkpoint> &ckpts = *ctx.checkpoints;
    auto it = std::upper_bound(
        ckpts.begin(), ckpts.end(), first_gate,
        [](int g, const Checkpoint &c) { return g < c.gatesApplied; });
    if (it != ckpts.begin()) {
        const Checkpoint &c = *std::prev(it);
        sv.amps() = c.state.amps();
        return c.gatesApplied;
    }
    sv.reset();
    return 0;
}

/**
 * Run one chunk of trials on the RNG stream (seed, chunk index). Every
 * random draw happens in a fixed per-trial order (site Bernoullis,
 * Pauli choices in gate order, measurement sample, readout flips), so
 * the chunk's outcome depends only on its stream — never on which
 * worker thread runs it or on checkpoint spacing.
 */
void
runChunk(const TrajectoryContext &ctx, Rng rng, int chunk_trials,
         ChunkStats &out)
{
    const Circuit &circuit = *ctx.circuit;
    const std::vector<ErrorSite> &sites = *ctx.sites;
    const std::vector<ProgQubit> &measured = *ctx.measured;
    const std::vector<double> &ro_err = *ctx.roErr;
    const int num_gates = circuit.numGates();

    StateVector traj(circuit.numQubits());
    traj.setKernelThreads(ctx.kernelThreads);
    std::vector<bool> fired(sites.size(), false);
    if (ctx.flatHistogram)
        out.flat.assign(uint64_t{1} << measured.size(), 0);
    else
        out.sparse.reserve(static_cast<size_t>(chunk_trials));

    for (int t = 0; t < chunk_trials; ++t) {
        bool any = false;
        int first_gate = INT_MAX;
        for (size_t i = 0; i < sites.size(); ++i) {
            fired[i] = rng.bernoulli(sites[i].prob);
            if (fired[i]) {
                any = true;
                first_gate = std::min(first_gate, sites[i].gateIdx);
            }
        }
        uint64_t basis;
        if (!any) {
            // Fault-free trajectory: sample from the cached ideal state.
            basis = ctx.ideal->sampleMeasurement(rng);
        } else {
            ++out.simulated;
            int pos = seekCheckpoint(ctx, traj, first_gate);
            // Walk the fired sites in injection order — (gateIdx, site
            // index) ascending — advancing the state up to each site's
            // gate before injecting its Pauli.
            for (int si : *ctx.injOrder) {
                if (!fired[static_cast<size_t>(si)])
                    continue;
                const ErrorSite &s = sites[static_cast<size_t>(si)];
                advanceState(ctx, traj, pos, s.gateIdx + 1);
                pos = std::max(pos, s.gateIdx + 1);
                injectPauli(traj, s, drawPauliCode(rng, s));
            }
            advanceState(ctx, traj, pos, num_gates);
            basis = traj.sampleMeasurement(rng);
        }
        uint64_t key = outcomeKey(basis, measured);
        // Classical readout errors flip measured bits independently.
        for (size_t k = 0; k < measured.size(); ++k)
            if (rng.bernoulli(ro_err[k]))
                key ^= uint64_t{1} << k;
        if (key == ctx.correctOutcome)
            ++out.successes;
        if (ctx.flatHistogram)
            ++out.flat[key];
        else
            ++out.sparse[key];
    }
}

/**
 * Flat per-trial randomness the dedup engine pre-draws. The draws are
 * consumed from each trial's RNG position in exactly runChunk's order
 * (site Bernoullis, Pauli codes in injection order, one measurement
 * uniform, readout flips), so grouping trials afterwards cannot change
 * any trial's randomness. Fault patterns — fired (site << 5 | code)
 * words in injection order — are stored back to back per chunk, so
 * presampling a trial allocates nothing.
 */
struct PresampledDraws
{
    std::vector<std::vector<uint32_t>> chunkWords; //!< Patterns, per chunk.
    std::vector<int> patternLen;                   //!< Per trial.
    std::vector<int> firstGate; //!< Per trial; INT_MAX = fault-free.
    std::vector<double> u;      //!< Per trial: measurement uniform.
    std::vector<uint64_t> flips; //!< Per trial: readout-flip mask.
};

/** Pre-draw one chunk of trials [lo, lo+n) into `words` and `out`. */
void
presampleChunk(const TrajectoryContext &ctx, Rng rng, int lo, int n,
               std::vector<uint32_t> &words, PresampledDraws &out)
{
    const std::vector<ErrorSite> &sites = *ctx.sites;
    const std::vector<double> &ro_err = *ctx.roErr;
    std::vector<bool> fired(sites.size(), false);
    for (int t = lo; t < lo + n; ++t) {
        bool any = false;
        int first_gate = INT_MAX;
        for (size_t i = 0; i < sites.size(); ++i) {
            fired[i] = rng.bernoulli(sites[i].prob);
            if (fired[i]) {
                any = true;
                first_gate = std::min(first_gate, sites[i].gateIdx);
            }
        }
        int len = 0;
        if (any)
            for (int si : *ctx.injOrder) {
                if (!fired[static_cast<size_t>(si)])
                    continue;
                int code = drawPauliCode(
                    rng, sites[static_cast<size_t>(si)]);
                words.push_back((static_cast<uint32_t>(si) << 5) |
                                static_cast<uint32_t>(code));
                ++len;
            }
        out.patternLen[static_cast<size_t>(t)] = len;
        out.firstGate[static_cast<size_t>(t)] = first_gate;
        out.u[static_cast<size_t>(t)] = rng.uniform();
        uint64_t fl = 0;
        for (size_t k = 0; k < ro_err.size(); ++k)
            if (rng.bernoulli(ro_err[k]))
                fl ^= uint64_t{1} << k;
        out.flips[static_cast<size_t>(t)] = fl;
    }
}

/** FNV-1a over a fault pattern's raw words. */
uint64_t
patternHash(const uint32_t *p, int n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (int i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** One distinct fault pattern and the trials that drew it. */
struct PatternGroup
{
    const uint32_t *pattern = nullptr; //!< Into PresampledDraws words.
    int patternLen = 0;
    int firstGate = INT_MAX;
    std::vector<int> trials; // ascending
};

/** Length of the common (site, code) prefix of two fault patterns. */
int
patternLcp(const uint32_t *a, int la, const uint32_t *b, int lb)
{
    int n = std::min(la, lb), k = 0;
    while (k < n && a[k] == b[k])
        ++k;
    return k;
}

/**
 * Sample every member trial's measurement from the group's final state.
 *
 * Sampling stays bit-identical to per-trial sampleMeasurement(u): the
 * member uniforms are sorted and assigned in one cumulative scan whose
 * accumulation order (basis index ascending) matches the per-trial
 * scan, so each uniform maps to exactly the basis index it would have
 * mapped to alone.
 */
void
sampleGroupTrials(const StateVector &state, const PatternGroup &group,
                  const PresampledDraws &draws,
                  std::vector<uint64_t> &basis_of)
{
    std::vector<std::pair<double, int>> us;
    us.reserve(group.trials.size());
    for (int t : group.trials)
        us.emplace_back(draws.u[static_cast<size_t>(t)], t);
    std::sort(us.begin(), us.end());

    const std::vector<Cplx> &amps = state.amps();
    const uint64_t dim = state.dim();
    size_t p = 0;
    double acc = 0.0;
    for (uint64_t i = 0; i < dim && p < us.size(); ++i) {
        acc += std::norm(amps[i]);
        while (p < us.size() && us[p].first < acc)
            basis_of[static_cast<size_t>(us[p++].second)] = i;
    }
    while (p < us.size())
        basis_of[static_cast<size_t>(us[p++].second)] = dim - 1;
}

/**
 * Simulate a contiguous slice of pattern-sorted groups, sharing state
 * between patterns with a common injection prefix.
 *
 * `order` lists group indices sorted lexicographically by pattern
 * content, so patterns that start with the same (site, code) injections
 * sit next to each other. While replaying a pattern the slice snapshots
 * the state after each injection it still shares with the *next*
 * pattern; that pattern then resumes from the deepest shared snapshot
 * instead of replaying the common prefix again. A snapshot is a copy of
 * exactly the state a from-scratch replay would reach (the prefix
 * determines the checkpoint seek, every advance and every injection),
 * so the reuse is bitwise invisible — results do not depend on slice
 * boundaries or thread count.
 */
void
runGroupSlice(const TrajectoryContext &ctx,
              const std::vector<PatternGroup> &groups,
              const std::vector<int> &order, size_t lo, size_t hi,
              const PresampledDraws &draws, std::vector<uint64_t> &basis_of)
{
    const std::vector<ErrorSite> &sites = *ctx.sites;
    StateVector traj(ctx.circuit->numQubits());
    traj.setKernelThreads(ctx.kernelThreads);
    std::vector<StateVector> snaps; // state after injection k
    std::vector<int> snapPos;       // gates applied at that point
    int valid_depth = 0;            // prefix of snaps shared with `traj`'s
                                    // last pattern that is still live

    for (size_t p = lo; p < hi; ++p) {
        const PatternGroup &group = groups[static_cast<size_t>(order[p])];
        if (group.patternLen == 0) {
            // Fault-free pattern (sorts first): sample the cached ideal.
            sampleGroupTrials(*ctx.ideal, group, draws, basis_of);
            valid_depth = 0;
            continue;
        }
        int next_lcp = 0;
        if (p + 1 < hi) {
            const PatternGroup &next =
                groups[static_cast<size_t>(order[p + 1])];
            next_lcp = patternLcp(group.pattern, group.patternLen,
                                  next.pattern, next.patternLen);
        }
        if (next_lcp > static_cast<int>(snaps.size())) {
            snaps.resize(static_cast<size_t>(next_lcp),
                         StateVector(ctx.circuit->numQubits()));
            snapPos.resize(static_cast<size_t>(next_lcp));
        }

        int pos;
        int resume = std::min(valid_depth, group.patternLen);
        if (resume > 0) {
            traj.amps() = snaps[static_cast<size_t>(resume - 1)].amps();
            pos = snapPos[static_cast<size_t>(resume - 1)];
        } else {
            pos = seekCheckpoint(ctx, traj, group.firstGate);
        }
        for (int k = resume; k < group.patternLen; ++k) {
            const uint32_t entry = group.pattern[k];
            const ErrorSite &s = sites[entry >> 5];
            advanceState(ctx, traj, pos, s.gateIdx + 1);
            pos = std::max(pos, s.gateIdx + 1);
            injectPauli(traj, s, static_cast<int>(entry & 31u));
            if (k < next_lcp) {
                snaps[static_cast<size_t>(k)].amps() = traj.amps();
                snapPos[static_cast<size_t>(k)] = pos;
            }
        }
        advanceState(ctx, traj, pos, ctx.circuit->numGates());
        sampleGroupTrials(traj, group, draws, basis_of);
        valid_depth = next_lcp;
    }
}

/**
 * The executeNoisy body. `planned_bytes` reports the reservation the
 * run held, so the public wrapper can attribute a std::bad_alloc that
 * escapes any allocation in here (including ones rethrown from pool
 * workers) to a sized, structured ResourceError.
 */
ExecutionResult
executeNoisyImpl(const Circuit &hw, const Device &dev,
                 const Calibration &calib, int trials, uint64_t seed,
                 const ExecOptions &opts, uint64_t &planned_bytes)
{
    if (trials < 1)
        fatal("executeNoisy: need at least one trial");
    if (hw.numQubits() != dev.numQubits())
        fatal("executeNoisy: circuit width ", hw.numQubits(),
              " does not match device ", dev.name());

    // Never trust the calibration feed: a NaN or negative rate here
    // would silently poison every Bernoulli draw, and an undersized
    // vector would read out of bounds below.
    Calibration safe = calib;
    {
        Diagnostics cdiags("calibration");
        int repairs =
            safe.validate(dev.topology(), ValidateMode::Sanitize, cdiags);
        cdiags.throwIfErrors("executeNoisy: unusable calibration for " +
                             dev.name());
        if (repairs > 0)
            warn("executeNoisy: sanitized ", repairs,
                 " invalid calibration value(s)");
    }

    // Error sites are enumerated on the full-width circuit (edge lookup
    // needs hardware indices), then relabeled onto the compact register.
    std::vector<ErrorSite> sites =
        collectErrorSites(hw, dev.topology(), safe);
    CompactCircuit cc = compactCircuit(hw);
    for (auto &s : sites) {
        s.q0 = cc.hwToCompact[static_cast<size_t>(s.q0)];
        if (s.q1 != -1)
            s.q1 = cc.hwToCompact[static_cast<size_t>(s.q1)];
    }

    std::vector<ProgQubit> measured = cc.circuit.measuredQubits();
    if (measured.empty())
        fatal("executeNoisy: circuit measures no qubits");
    std::vector<double> ro_err(measured.size());
    for (size_t k = 0; k < measured.size(); ++k) {
        HwQubit hq = cc.compactToHw[static_cast<size_t>(measured[k])];
        ro_err[k] = safe.errRO[static_cast<size_t>(hq)];
    }

    // Thread request: > 0 forces that many workers (1 = true serial
    // path), < 0 is adaptive; 0 defers to TRIQ_SIM_THREADS where 0
    // again means adaptive. After this block, 0 = adaptive.
    int threads_req = opts.threads;
    if (threads_req == 0)
        threads_req = defaultSimThreads(1);
    if (threads_req < 0)
        threads_req = 0;

    // Intra-state kernel threading, same convention. Kernel sharding
    // adds no state copies (workers write disjoint slices of the one
    // state), so it is orthogonal to the memory plan below.
    int kernel_threads = opts.kernelThreads;
    if (kernel_threads == 0)
        kernel_threads = defaultKernelThreads(1);
    if (kernel_threads < 0)
        kernel_threads = 0;

    // Reserve the run's predicted peak memory against the process
    // budget before the first state vector exists. When the full plan
    // does not fit, degrade to the low-memory plan (serial, no
    // checkpoints, no dedup: ideal + one trajectory state) before
    // giving up; only when even that cannot fit does the reservation
    // throw a structured ResourceError.
    ResourceGovernor &gov = processGovernor();
    const int active_qubits = cc.circuit.numQubits();
    const int planned_workers =
        threads_req > 0 ? threads_req
                        : std::max(schedCalib().hardwareThreads, 1);
    bool low_mem = false;
    planned_bytes = predictSimulationBytes(active_qubits, planned_workers);
    MemReservation reservation;
    try {
        reservation = MemReservation(gov, planned_bytes,
                                     "simulation of " + hw.name());
    } catch (const ResourceError &) {
        planned_bytes = predictLowMemSimulationBytes(active_qubits);
        reservation = MemReservation(
            gov, planned_bytes, "low-memory simulation of " + hw.name());
        low_mem = true;
        threads_req = 1;
        warn("executeNoisy: memory budget ",
             formatBytes(gov.budgetBytes()), " forces the low-memory ",
             "plan for ", hw.name(), " (serial trajectories, no ",
             "checkpoints, no dedup; kernel threading unaffected — it ",
             "adds no state copies)");
    }

    // Ideal reference evolution, snapshotted every K gates so faulty
    // trajectories can resume mid-circuit. K is chosen so the snapshots
    // stay within a fixed memory budget; the final state doubles as the
    // fault-free sampling cache and the benchmark's correct answer.
    // The ideal pass stays gate-by-gate even with fusion on, so the
    // checkpoints (and the fault-free sampling cache) are bitwise
    // independent of the fusion setting.
    const int num_gates = cc.circuit.numGates();
    StateVector ideal(cc.circuit.numQubits());
    // The ideal evolution runs on the control thread, so it may always
    // shard its kernels; on small registers the adaptive plan (and the
    // serial default) keeps it serial.
    ideal.setKernelThreads(kernel_threads);
    int interval = low_mem ? -1 : opts.checkpointInterval;
    if (interval == 0) {
        uint64_t bytes_per = ideal.dim() * sizeof(Cplx);
        int max_ckpts = static_cast<int>(std::clamp<uint64_t>(
            kCheckpointBudgetBytes / std::max<uint64_t>(bytes_per, 1), 1,
            1024));
        interval = std::max(1, (num_gates + max_ckpts - 1) / max_ckpts);
    }
    std::vector<Checkpoint> checkpoints;
    for (int gi = 0; gi < num_gates; ++gi) {
        const Gate &g = cc.circuit.gate(gi);
        if (g.kind != GateKind::Measure)
            ideal.applyGate(g);
        int applied = gi + 1;
        if (interval > 0 && applied % interval == 0 &&
            applied < num_gates)
            checkpoints.push_back({applied, ideal});
    }

    // The benchmark's correct answer: the dominant outcome of the
    // *measured-qubit marginal* (unmeasured ancillas may legitimately
    // end in superposition).
    std::vector<double> marginal(uint64_t{1} << measured.size(), 0.0);
    for (uint64_t b = 0; b < ideal.dim(); ++b) {
        double p = ideal.probability(b);
        if (p > 0.0)
            marginal[outcomeKey(b, measured)] += p;
    }
    uint64_t ideal_key = 0;
    double ideal_prob = -1.0;
    for (uint64_t k = 0; k < marginal.size(); ++k)
        if (marginal[k] > ideal_prob) {
            ideal_prob = marginal[k];
            ideal_key = k;
        }
    ExecutionResult res;
    res.correctOutcome = ideal_key;
    res.trials = trials;
    res.esp = estimatedSuccessProbability(hw, dev.topology(), safe);
    res.noErrorProb = noErrorProbability(sites);
    if (ideal_prob < 0.99)
        warn("executeNoisy: ", hw.name(),
             " has a non-deterministic ideal output (p=", ideal_prob,
             "); success is counted against the dominant outcome");

    // Injection order: site indices sorted by (gateIdx, site index).
    // Both engines draw fired sites' Pauli codes and apply their
    // injections in exactly this order.
    std::vector<int> inj_order(sites.size());
    for (size_t i = 0; i < sites.size(); ++i)
        inj_order[i] = static_cast<int>(i);
    std::stable_sort(inj_order.begin(), inj_order.end(),
                     [&](int a, int b) {
                         return sites[static_cast<size_t>(a)].gateIdx <
                                sites[static_cast<size_t>(b)].gateIdx;
                     });

    const bool use_fusion =
        opts.fusion > 0 || (opts.fusion == 0 && defaultSimFusion());
    const bool use_dedup =
        !low_mem &&
        (opts.dedup > 0 || (opts.dedup == 0 && defaultSimDedup()));
    FusedProgram fused_program;
    if (use_fusion) {
        // Align fused operators to the checkpoint interval so replays
        // resumed from a checkpoint start on an operator boundary
        // instead of falling back to plain gates mid-operator. A
        // per-gate interval would forbid all fusion, so leave operators
        // unaligned there — every boundary is an op boundary anyway
        // once spans stay small.
        FusionOptions fopt;
        fopt.alignBoundary = interval > 1 ? interval : 0;
        fused_program = FusedProgram(cc.circuit, fopt);
    }

    TrajectoryContext ctx;
    ctx.circuit = &cc.circuit;
    ctx.sites = &sites;
    ctx.injOrder = &inj_order;
    ctx.measured = &measured;
    ctx.roErr = &ro_err;
    ctx.ideal = &ideal;
    ctx.checkpoints = &checkpoints;
    ctx.fused = use_fusion ? &fused_program : nullptr;
    ctx.correctOutcome = ideal_key;
    ctx.flatHistogram = measured.size() <= kFlatHistogramBits;

    // Shard trials into chunks; chunk ci owns the RNG stream
    // (seed, ci), and chunks merge in index order below, so the result
    // is a pure function of (seed, trials, chunk size) — never of the
    // thread count.
    const int chunk_size =
        opts.chunkSize > 0 ? opts.chunkSize : kDefaultChunkSize;
    const int num_chunks = (trials + chunk_size - 1) / chunk_size;
    const uint64_t stream_seed = seed ^ 0xABCDEF1234567890ull;

    const SchedCalib &scal = schedCalib();
    const double faulty_frac =
        std::clamp(1.0 - res.noErrorProb, 0.0, 1.0);
    auto plan = [&](int items, double us_per_item) {
        return threads_req > 0
                   ? planForced(scal, items, us_per_item, threads_req,
                                processPoolStarted())
                   : planParallel(scal, items, us_per_item, 0,
                                  processPoolStarted());
    };

    if (use_dedup) {
        // Phase A: pre-draw every trial's randomness, chunk-parallel.
        // Chunks write disjoint trial slots and their own word buffers,
        // so scheduling cannot change any draw.
        PresampledDraws draws;
        draws.chunkWords.resize(static_cast<size_t>(num_chunks));
        draws.patternLen.resize(static_cast<size_t>(trials));
        draws.firstGate.resize(static_cast<size_t>(trials));
        draws.u.resize(static_cast<size_t>(trials));
        draws.flips.resize(static_cast<size_t>(trials));
        auto presample = [&](int ci) {
            int lo = ci * chunk_size;
            int n = std::min(chunk_size, trials - lo);
            presampleChunk(ctx,
                           Rng::stream(stream_seed,
                                       static_cast<uint64_t>(ci)),
                           lo, n,
                           draws.chunkWords[static_cast<size_t>(ci)],
                           draws);
        };
        // Presampling is cheap per chunk (a few Bernoullis per site),
        // so the cost model usually keeps it serial — exactly the case
        // where the old per-call pool spawn used to eat the win.
        SchedDecision pre_dec =
            plan(num_chunks,
                 estimatePresampleUs(scal,
                                     static_cast<int>(sites.size()),
                                     chunk_size));
        runPerPlan(pre_dec, num_chunks, presample);

        // Phase B: group trials by identical fault pattern, in trial
        // order (deterministic first-seen group numbering). The hash
        // only picks a bucket; group identity is pattern equality.
        std::vector<PatternGroup> groups;
        std::unordered_map<uint64_t, std::vector<int>> buckets;
        buckets.reserve(static_cast<size_t>(trials) / 2 + 1);
        for (int ci = 0, t = 0; ci < num_chunks; ++ci) {
            const uint32_t *w =
                draws.chunkWords[static_cast<size_t>(ci)].data();
            const int n =
                std::min(chunk_size, trials - ci * chunk_size);
            for (int k = 0; k < n; ++k, ++t) {
                const int len =
                    draws.patternLen[static_cast<size_t>(t)];
                std::vector<int> &bucket =
                    buckets[patternHash(w, len)];
                int gidx = -1;
                for (int g : bucket) {
                    const PatternGroup &pg =
                        groups[static_cast<size_t>(g)];
                    if (pg.patternLen == len &&
                        std::equal(pg.pattern, pg.pattern + len, w)) {
                        gidx = g;
                        break;
                    }
                }
                if (gidx < 0) {
                    gidx = static_cast<int>(groups.size());
                    PatternGroup g;
                    g.pattern = w;
                    g.patternLen = len;
                    g.firstGate =
                        draws.firstGate[static_cast<size_t>(t)];
                    groups.push_back(std::move(g));
                    bucket.push_back(gidx);
                }
                groups[static_cast<size_t>(gidx)].trials.push_back(t);
                w += len;
            }
        }

        // Phase C: simulate each distinct pattern once. Groups are
        // sorted by pattern content so patterns sharing an injection
        // prefix run back to back and reuse the shared state (see
        // runGroupSlice); each parallel worker takes one contiguous
        // slice of the sorted order. Groups write disjoint basis_of
        // slots and snapshot reuse is bitwise exact, so neither
        // scheduling nor the slice boundaries can change any result.
        std::vector<uint64_t> basis_of(static_cast<size_t>(trials));
        const int num_groups = static_cast<int>(groups.size());
        std::vector<int> order(static_cast<size_t>(num_groups));
        for (int gi = 0; gi < num_groups; ++gi)
            order[static_cast<size_t>(gi)] = gi;
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            const PatternGroup &ga = groups[static_cast<size_t>(a)];
            const PatternGroup &gb = groups[static_cast<size_t>(b)];
            return std::lexicographical_compare(
                ga.pattern, ga.pattern + ga.patternLen, gb.pattern,
                gb.pattern + gb.patternLen);
        });
        SchedDecision dec =
            plan(num_groups,
                 estimateGroupUs(scal, cc.circuit.numQubits(),
                                 num_gates));
        // Kernel threading and the group fan-out share the process
        // pool: when the fan-out is threaded, trajectory kernels must
        // stay serial (pool jobs cannot submit to the pool); when it
        // is serial, the kernels get the whole pool. Bit-identical
        // either way.
        ctx.kernelThreads = dec.threaded ? 1 : kernel_threads;
        auto t_run = std::chrono::steady_clock::now();
        if (!dec.threaded) {
            runGroupSlice(ctx, groups, order, 0,
                          static_cast<size_t>(num_groups), draws,
                          basis_of);
        } else {
            // One contiguous slice per worker (not the generic batched
            // ranges): coarse slices keep the LCP state sharing between
            // neighboring patterns maximal, and slicing is bitwise
            // invisible (see runGroupSlice).
            const int slices = std::min(dec.threads, num_groups);
            ThreadPool &pool = processPool(dec.threads);
            parallelFor(pool, slices, [&](int w) {
                size_t lo = static_cast<size_t>(num_groups) *
                            static_cast<size_t>(w) /
                            static_cast<size_t>(slices);
                size_t hi = static_cast<size_t>(num_groups) *
                            static_cast<size_t>(w + 1) /
                            static_cast<size_t>(slices);
                runGroupSlice(ctx, groups, order, lo, hi, draws,
                              basis_of);
            });
            dec.threads = slices;
            dec.tasks = slices;
            dec.itemsPerTask = (num_groups + slices - 1) / slices;
        }
        dec.actualMs = msSince(t_run);
        res.sched = dec;
        for (const PatternGroup &g : groups)
            if (g.patternLen > 0)
                ++res.simulatedTrajectories;

        // Phase D: serial tally in trial order.
        int successes = 0;
        if (ctx.flatHistogram) {
            std::vector<int> total(uint64_t{1} << measured.size(), 0);
            for (int t = 0; t < trials; ++t) {
                uint64_t key =
                    outcomeKey(basis_of[static_cast<size_t>(t)],
                               measured) ^
                    draws.flips[static_cast<size_t>(t)];
                if (key == ideal_key)
                    ++successes;
                ++total[key];
            }
            res.histogram.reserve(total.size());
            for (size_t k = 0; k < total.size(); ++k)
                if (total[k] != 0)
                    res.histogram.emplace(static_cast<uint64_t>(k),
                                          total[k]);
        } else {
            res.histogram.reserve(static_cast<size_t>(trials));
            for (int t = 0; t < trials; ++t) {
                uint64_t key =
                    outcomeKey(basis_of[static_cast<size_t>(t)],
                               measured) ^
                    draws.flips[static_cast<size_t>(t)];
                if (key == ideal_key)
                    ++successes;
                ++res.histogram[key];
            }
        }
        res.successRate = static_cast<double>(successes) / trials;
        int modal_count = 0;
        for (const auto &[key, count] : res.histogram)
            if (count > modal_count)
                modal_count = count;
        res.correctIsModal = successes == modal_count;
        return res;
    }

    std::vector<ChunkStats> stats(static_cast<size_t>(num_chunks));
    auto run_chunk = [&](int ci) {
        int lo = ci * chunk_size;
        int n = std::min(chunk_size, trials - lo);
        runChunk(ctx, Rng::stream(stream_seed, static_cast<uint64_t>(ci)),
                 n, stats[static_cast<size_t>(ci)]);
    };
    SchedDecision dec =
        plan(num_chunks, estimateChunkUs(scal, cc.circuit.numQubits(),
                                         num_gates, chunk_size,
                                         faulty_frac));
    // Same pool-sharing rule as the dedup path: threaded chunk fan-out
    // means serial trajectory kernels, and vice versa. The low-memory
    // degraded plan lands here with threads_req == 1, so its lone
    // trajectory state keeps full kernel threading at the same 2-state
    // footprint.
    ctx.kernelThreads = dec.threaded ? 1 : kernel_threads;
    auto t_run = std::chrono::steady_clock::now();
    runPerPlan(dec, num_chunks, run_chunk);
    dec.actualMs = msSince(t_run);
    res.sched = dec;

    // Chunk-ordered merge keeps even the histogram's unordered-map
    // construction sequence identical across thread counts.
    int successes = 0;
    if (ctx.flatHistogram) {
        std::vector<int> total(uint64_t{1} << measured.size(), 0);
        for (const ChunkStats &s : stats) {
            successes += s.successes;
            res.simulatedTrajectories += s.simulated;
            for (size_t k = 0; k < total.size(); ++k)
                total[k] += s.flat[k];
        }
        res.histogram.reserve(total.size());
        for (size_t k = 0; k < total.size(); ++k)
            if (total[k] != 0)
                res.histogram.emplace(static_cast<uint64_t>(k), total[k]);
    } else {
        res.histogram.reserve(static_cast<size_t>(trials));
        for (const ChunkStats &s : stats) {
            successes += s.successes;
            res.simulatedTrajectories += s.simulated;
            for (const auto &[key, count] : s.sparse)
                res.histogram[key] += count;
        }
    }
    res.successRate = static_cast<double>(successes) / trials;
    int modal_count = 0;
    for (const auto &[key, count] : res.histogram)
        if (count > modal_count)
            modal_count = count;
    res.correctIsModal = successes == modal_count;
    return res;
}

} // namespace

std::vector<std::pair<uint64_t, int>>
ExecutionResult::sortedHistogram() const
{
    std::vector<std::pair<uint64_t, int>> out(histogram.begin(),
                                              histogram.end());
    std::sort(out.begin(), out.end());
    return out;
}

ExecutionResult
executeNoisy(const Circuit &hw, const Device &dev, const Calibration &calib,
             int trials, uint64_t seed, const ExecOptions &opts)
{
    uint64_t planned_bytes = 0;
    try {
        return executeNoisyImpl(hw, dev, calib, trials, seed, opts,
                                planned_bytes);
    } catch (const std::bad_alloc &) {
        // An allocation the reservation did not cover (or an untracked
        // ancillary one) failed. Surface it as the same structured
        // resource error the reservation path throws, never as an
        // unhandled abort.
        ResourceGovernor &gov = processGovernor();
        std::ostringstream msg;
        msg << "simulation of " << hw.name()
            << " failed to allocate (planned "
            << formatBytes(planned_bytes) << ", budget "
            << formatBytes(gov.budgetBytes()) << ")";
        throw ResourceError(msg.str(), planned_bytes, gov.budgetBytes(),
                            gov.committedBytes());
    }
}

uint64_t
outcomeForProgram(uint64_t key, const Circuit &hw,
                  const std::vector<HwQubit> &final_map,
                  const std::vector<ProgQubit> &prog_measured)
{
    std::vector<ProgQubit> hw_measured = hw.measuredQubits();
    uint64_t out = 0;
    for (size_t k = 0; k < prog_measured.size(); ++k) {
        ProgQubit p = prog_measured[k];
        if (p < 0 || p >= static_cast<int>(final_map.size()))
            fatal("outcomeForProgram: program qubit ", p,
                  " has no final-map entry");
        HwQubit h = final_map[static_cast<size_t>(p)];
        auto it = std::find(hw_measured.begin(), hw_measured.end(), h);
        if (it == hw_measured.end())
            fatal("outcomeForProgram: hardware qubit ", h,
                  " (program qubit ", p, ") is not measured");
        size_t pos = static_cast<size_t>(it - hw_measured.begin());
        out |= ((key >> pos) & 1) << k;
    }
    return out;
}

int
defaultTrials(int fallback)
{
    return envInt("TRIQ_TRIALS", fallback, 1);
}

int
defaultSimThreads(int fallback)
{
    // min 0: TRIQ_SIM_THREADS=0 is valid and means "adaptive".
    return envInt("TRIQ_SIM_THREADS", fallback, 0);
}

int
defaultKernelThreads(int fallback)
{
    // min 0: TRIQ_KERNEL_THREADS=0 is valid and means "adaptive".
    return envInt("TRIQ_KERNEL_THREADS", fallback, 0);
}

bool
defaultSimFusion(bool fallback)
{
    return envInt("TRIQ_SIM_FUSION", fallback ? 1 : 0, 0) != 0;
}

bool
defaultSimDedup(bool fallback)
{
    return envInt("TRIQ_SIM_DEDUP", fallback ? 1 : 0, 0) != 0;
}

} // namespace triq
