#include "sim/executor.hh"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/esp.hh"
#include "sim/compact.hh"
#include "sim/noise.hh"
#include "sim/statevector.hh"

namespace triq
{

namespace
{

/** Map a sampled basis index to the measured-qubit key. */
uint64_t
outcomeKey(uint64_t basis, const std::vector<ProgQubit> &measured)
{
    uint64_t key = 0;
    for (size_t k = 0; k < measured.size(); ++k)
        key |= ((basis >> measured[k]) & 1) << k;
    return key;
}

} // namespace

ExecutionResult
executeNoisy(const Circuit &hw, const Device &dev, const Calibration &calib,
             int trials, uint64_t seed)
{
    if (trials < 1)
        fatal("executeNoisy: need at least one trial");
    if (hw.numQubits() != dev.numQubits())
        fatal("executeNoisy: circuit width ", hw.numQubits(),
              " does not match device ", dev.name());

    // Error sites are enumerated on the full-width circuit (edge lookup
    // needs hardware indices), then relabeled onto the compact register.
    std::vector<ErrorSite> sites =
        collectErrorSites(hw, dev.topology(), calib);
    CompactCircuit cc = compactCircuit(hw);
    for (auto &s : sites) {
        s.q0 = cc.hwToCompact[static_cast<size_t>(s.q0)];
        if (s.q1 != -1)
            s.q1 = cc.hwToCompact[static_cast<size_t>(s.q1)];
    }

    std::vector<ProgQubit> measured = cc.circuit.measuredQubits();
    if (measured.empty())
        fatal("executeNoisy: circuit measures no qubits");
    std::vector<double> ro_err(measured.size());
    for (size_t k = 0; k < measured.size(); ++k) {
        HwQubit hq = cc.compactToHw[static_cast<size_t>(measured[k])];
        ro_err[k] = calib.errRO[static_cast<size_t>(hq)];
    }

    // Ideal reference state and the benchmark's correct answer: the
    // dominant outcome of the *measured-qubit marginal* (unmeasured
    // ancillas may legitimately end in superposition).
    StateVector ideal(cc.circuit.numQubits());
    ideal.applyCircuit(cc.circuit);
    std::vector<double> marginal(uint64_t{1} << measured.size(), 0.0);
    for (uint64_t b = 0; b < ideal.dim(); ++b) {
        double p = ideal.probability(b);
        if (p > 0.0)
            marginal[outcomeKey(b, measured)] += p;
    }
    uint64_t ideal_key = 0;
    double ideal_prob = -1.0;
    for (uint64_t k = 0; k < marginal.size(); ++k)
        if (marginal[k] > ideal_prob) {
            ideal_prob = marginal[k];
            ideal_key = k;
        }
    ExecutionResult res;
    res.correctOutcome = ideal_key;
    res.trials = trials;
    res.esp = estimatedSuccessProbability(hw, dev.topology(), calib);
    res.noErrorProb = noErrorProbability(sites);
    if (ideal_prob < 0.99)
        warn("executeNoisy: ", hw.name(),
             " has a non-deterministic ideal output (p=", ideal_prob,
             "); success is counted against the dominant outcome");

    // Sites grouped by the gate they follow, for trajectory replay.
    std::vector<std::vector<int>> sites_after(
        static_cast<size_t>(cc.circuit.numGates()));
    for (size_t i = 0; i < sites.size(); ++i)
        sites_after[static_cast<size_t>(sites[i].gateIdx)].push_back(
            static_cast<int>(i));

    Rng rng(seed ^ 0xABCDEF1234567890ull);
    StateVector traj(cc.circuit.numQubits());
    std::vector<bool> fired(sites.size(), false);
    int successes = 0;
    std::map<uint64_t, int> &histogram = res.histogram;

    auto inject = [&](const ErrorSite &s) {
        auto pauli1 = [&](int q, int which) {
            switch (which) {
              case 0:
                traj.applyX(q);
                break;
              case 1:
                traj.applyY(q);
                break;
              default:
                traj.applyZ(q);
                break;
            }
        };
        if (s.idle) {
            traj.applyZ(s.q0);
            return;
        }
        if (s.q1 == -1) {
            pauli1(s.q0, rng.uniformInt(3));
            return;
        }
        // Uniform non-identity 2Q Pauli: index 1..15 in base 4.
        int code = 1 + rng.uniformInt(15);
        int p0 = code & 3, p1 = (code >> 2) & 3;
        if (p0 != 0)
            pauli1(s.q0, p0 - 1);
        if (p1 != 0)
            pauli1(s.q1, p1 - 1);
    };

    for (int t = 0; t < trials; ++t) {
        bool any = false;
        for (size_t i = 0; i < sites.size(); ++i) {
            fired[i] = rng.bernoulli(sites[i].prob);
            any = any || fired[i];
        }
        uint64_t basis;
        if (!any) {
            // Fault-free trajectory: sample from the cached ideal state.
            basis = ideal.sampleMeasurement(rng);
        } else {
            ++res.simulatedTrajectories;
            traj.reset();
            for (int gi = 0; gi < cc.circuit.numGates(); ++gi) {
                const Gate &g = cc.circuit.gate(gi);
                if (g.kind != GateKind::Measure)
                    traj.applyGate(g);
                for (int si : sites_after[static_cast<size_t>(gi)])
                    if (fired[static_cast<size_t>(si)])
                        inject(sites[static_cast<size_t>(si)]);
            }
            basis = traj.sampleMeasurement(rng);
        }
        uint64_t key = outcomeKey(basis, measured);
        // Classical readout errors flip measured bits independently.
        for (size_t k = 0; k < measured.size(); ++k)
            if (rng.bernoulli(ro_err[k]))
                key ^= uint64_t{1} << k;
        if (key == res.correctOutcome)
            ++successes;
        ++histogram[key];
    }
    res.successRate = static_cast<double>(successes) / trials;
    int modal_count = 0;
    for (const auto &[key, count] : histogram)
        if (count > modal_count)
            modal_count = count;
    res.correctIsModal = successes == modal_count;
    return res;
}

uint64_t
outcomeForProgram(uint64_t key, const Circuit &hw,
                  const std::vector<HwQubit> &final_map,
                  const std::vector<ProgQubit> &prog_measured)
{
    std::vector<ProgQubit> hw_measured = hw.measuredQubits();
    uint64_t out = 0;
    for (size_t k = 0; k < prog_measured.size(); ++k) {
        ProgQubit p = prog_measured[k];
        if (p < 0 || p >= static_cast<int>(final_map.size()))
            fatal("outcomeForProgram: program qubit ", p,
                  " has no final-map entry");
        HwQubit h = final_map[static_cast<size_t>(p)];
        auto it = std::find(hw_measured.begin(), hw_measured.end(), h);
        if (it == hw_measured.end())
            fatal("outcomeForProgram: hardware qubit ", h,
                  " (program qubit ", p, ") is not measured");
        size_t pos = static_cast<size_t>(it - hw_measured.begin());
        out |= ((key >> pos) & 1) << k;
    }
    return out;
}

int
defaultTrials(int fallback)
{
    const char *env = std::getenv("TRIQ_TRIALS");
    if (!env)
        return fallback;
    int v = std::atoi(env);
    if (v < 1) {
        warn("TRIQ_TRIALS='", env, "' is not a positive integer; using ",
             fallback);
        return fallback;
    }
    return v;
}

} // namespace triq
