#include "sim/executor.hh"

#include <algorithm>
#include <climits>
#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/esp.hh"
#include "sim/compact.hh"
#include "sim/noise.hh"
#include "sim/statevector.hh"

namespace triq
{

namespace
{

/** Trials per RNG chunk; part of the sampling contract (see header). */
constexpr int kDefaultChunkSize = 64;

/** Histograms this narrow use a flat per-chunk count vector. */
constexpr size_t kFlatHistogramBits = 12;

/** Snapshot memory budget for automatic checkpoint spacing. */
constexpr uint64_t kCheckpointBudgetBytes = 64ull << 20;

/** Map a sampled basis index to the measured-qubit key. */
uint64_t
outcomeKey(uint64_t basis, const std::vector<ProgQubit> &measured)
{
    uint64_t key = 0;
    for (size_t k = 0; k < measured.size(); ++k)
        key |= ((basis >> measured[k]) & 1) << k;
    return key;
}

/** An ideal-evolution snapshot taken after `gatesApplied` gates. */
struct Checkpoint
{
    int gatesApplied;
    StateVector state;
};

/** Read-only per-call context shared by every chunk. */
struct TrajectoryContext
{
    const Circuit *circuit; // compact circuit
    const std::vector<ErrorSite> *sites;
    const std::vector<std::vector<int>> *sitesAfter;
    const std::vector<ProgQubit> *measured;
    const std::vector<double> *roErr;
    const StateVector *ideal;
    const std::vector<Checkpoint> *checkpoints; // ascending gatesApplied
    uint64_t correctOutcome;
    bool flatHistogram;
};

/** Per-chunk accumulator; merged into the result in chunk order. */
struct ChunkStats
{
    int successes = 0;
    int simulated = 0;
    std::vector<int> flat;
    std::unordered_map<uint64_t, int> sparse;
};

/**
 * Run one chunk of trials on the RNG stream (seed, chunk index). Every
 * random draw happens in a fixed per-trial order (site Bernoullis,
 * Pauli choices in gate order, measurement sample, readout flips), so
 * the chunk's outcome depends only on its stream — never on which
 * worker thread runs it or on checkpoint spacing.
 */
void
runChunk(const TrajectoryContext &ctx, Rng rng, int chunk_trials,
         ChunkStats &out)
{
    const Circuit &circuit = *ctx.circuit;
    const std::vector<ErrorSite> &sites = *ctx.sites;
    const std::vector<ProgQubit> &measured = *ctx.measured;
    const std::vector<double> &ro_err = *ctx.roErr;
    const int num_gates = circuit.numGates();

    StateVector traj(circuit.numQubits());
    std::vector<bool> fired(sites.size(), false);
    if (ctx.flatHistogram)
        out.flat.assign(uint64_t{1} << measured.size(), 0);

    auto inject = [&](const ErrorSite &s) {
        auto pauli1 = [&](int q, int which) {
            switch (which) {
              case 0:
                traj.applyX(q);
                break;
              case 1:
                traj.applyY(q);
                break;
              default:
                traj.applyZ(q);
                break;
            }
        };
        if (s.idle) {
            traj.applyZ(s.q0);
            return;
        }
        if (s.q1 == -1) {
            pauli1(s.q0, rng.uniformInt(3));
            return;
        }
        // Uniform non-identity 2Q Pauli: index 1..15 in base 4.
        int code = 1 + rng.uniformInt(15);
        int p0 = code & 3, p1 = (code >> 2) & 3;
        if (p0 != 0)
            pauli1(s.q0, p0 - 1);
        if (p1 != 0)
            pauli1(s.q1, p1 - 1);
    };

    for (int t = 0; t < chunk_trials; ++t) {
        bool any = false;
        int first_gate = INT_MAX;
        for (size_t i = 0; i < sites.size(); ++i) {
            fired[i] = rng.bernoulli(sites[i].prob);
            if (fired[i]) {
                any = true;
                first_gate = std::min(first_gate, sites[i].gateIdx);
            }
        }
        uint64_t basis;
        if (!any) {
            // Fault-free trajectory: sample from the cached ideal state.
            basis = ctx.ideal->sampleMeasurement(rng);
        } else {
            ++out.simulated;
            // Resume from the last ideal-prefix checkpoint that still
            // precedes the first fired site; the prefix is fault-free,
            // so its evolution is identical to a full replay's.
            int start_gate = 0;
            const std::vector<Checkpoint> &ckpts = *ctx.checkpoints;
            auto it = std::upper_bound(
                ckpts.begin(), ckpts.end(), first_gate,
                [](int g, const Checkpoint &c) { return g < c.gatesApplied; });
            if (it != ckpts.begin()) {
                const Checkpoint &c = *std::prev(it);
                traj.amps() = c.state.amps();
                start_gate = c.gatesApplied;
            } else {
                traj.reset();
            }
            for (int gi = start_gate; gi < num_gates; ++gi) {
                const Gate &g = circuit.gate(gi);
                if (g.kind != GateKind::Measure)
                    traj.applyGate(g);
                for (int si : (*ctx.sitesAfter)[static_cast<size_t>(gi)])
                    if (fired[static_cast<size_t>(si)])
                        inject(sites[static_cast<size_t>(si)]);
            }
            basis = traj.sampleMeasurement(rng);
        }
        uint64_t key = outcomeKey(basis, measured);
        // Classical readout errors flip measured bits independently.
        for (size_t k = 0; k < measured.size(); ++k)
            if (rng.bernoulli(ro_err[k]))
                key ^= uint64_t{1} << k;
        if (key == ctx.correctOutcome)
            ++out.successes;
        if (ctx.flatHistogram)
            ++out.flat[key];
        else
            ++out.sparse[key];
    }
}

} // namespace

std::vector<std::pair<uint64_t, int>>
ExecutionResult::sortedHistogram() const
{
    std::vector<std::pair<uint64_t, int>> out(histogram.begin(),
                                              histogram.end());
    std::sort(out.begin(), out.end());
    return out;
}

ExecutionResult
executeNoisy(const Circuit &hw, const Device &dev, const Calibration &calib,
             int trials, uint64_t seed, const ExecOptions &opts)
{
    if (trials < 1)
        fatal("executeNoisy: need at least one trial");
    if (hw.numQubits() != dev.numQubits())
        fatal("executeNoisy: circuit width ", hw.numQubits(),
              " does not match device ", dev.name());

    // Never trust the calibration feed: a NaN or negative rate here
    // would silently poison every Bernoulli draw, and an undersized
    // vector would read out of bounds below.
    Calibration safe = calib;
    {
        Diagnostics cdiags("calibration");
        int repairs =
            safe.validate(dev.topology(), ValidateMode::Sanitize, cdiags);
        cdiags.throwIfErrors("executeNoisy: unusable calibration for " +
                             dev.name());
        if (repairs > 0)
            warn("executeNoisy: sanitized ", repairs,
                 " invalid calibration value(s)");
    }

    // Error sites are enumerated on the full-width circuit (edge lookup
    // needs hardware indices), then relabeled onto the compact register.
    std::vector<ErrorSite> sites =
        collectErrorSites(hw, dev.topology(), safe);
    CompactCircuit cc = compactCircuit(hw);
    for (auto &s : sites) {
        s.q0 = cc.hwToCompact[static_cast<size_t>(s.q0)];
        if (s.q1 != -1)
            s.q1 = cc.hwToCompact[static_cast<size_t>(s.q1)];
    }

    std::vector<ProgQubit> measured = cc.circuit.measuredQubits();
    if (measured.empty())
        fatal("executeNoisy: circuit measures no qubits");
    std::vector<double> ro_err(measured.size());
    for (size_t k = 0; k < measured.size(); ++k) {
        HwQubit hq = cc.compactToHw[static_cast<size_t>(measured[k])];
        ro_err[k] = safe.errRO[static_cast<size_t>(hq)];
    }

    // Ideal reference evolution, snapshotted every K gates so faulty
    // trajectories can resume mid-circuit. K is chosen so the snapshots
    // stay within a fixed memory budget; the final state doubles as the
    // fault-free sampling cache and the benchmark's correct answer.
    const int num_gates = cc.circuit.numGates();
    StateVector ideal(cc.circuit.numQubits());
    int interval = opts.checkpointInterval;
    if (interval == 0) {
        uint64_t bytes_per = ideal.dim() * sizeof(Cplx);
        int max_ckpts = static_cast<int>(std::clamp<uint64_t>(
            kCheckpointBudgetBytes / std::max<uint64_t>(bytes_per, 1), 1,
            64));
        interval = std::max(8, (num_gates + max_ckpts - 1) / max_ckpts);
    }
    std::vector<Checkpoint> checkpoints;
    for (int gi = 0; gi < num_gates; ++gi) {
        const Gate &g = cc.circuit.gate(gi);
        if (g.kind != GateKind::Measure)
            ideal.applyGate(g);
        int applied = gi + 1;
        if (interval > 0 && applied % interval == 0 &&
            applied < num_gates)
            checkpoints.push_back({applied, ideal});
    }

    // The benchmark's correct answer: the dominant outcome of the
    // *measured-qubit marginal* (unmeasured ancillas may legitimately
    // end in superposition).
    std::vector<double> marginal(uint64_t{1} << measured.size(), 0.0);
    for (uint64_t b = 0; b < ideal.dim(); ++b) {
        double p = ideal.probability(b);
        if (p > 0.0)
            marginal[outcomeKey(b, measured)] += p;
    }
    uint64_t ideal_key = 0;
    double ideal_prob = -1.0;
    for (uint64_t k = 0; k < marginal.size(); ++k)
        if (marginal[k] > ideal_prob) {
            ideal_prob = marginal[k];
            ideal_key = k;
        }
    ExecutionResult res;
    res.correctOutcome = ideal_key;
    res.trials = trials;
    res.esp = estimatedSuccessProbability(hw, dev.topology(), safe);
    res.noErrorProb = noErrorProbability(sites);
    if (ideal_prob < 0.99)
        warn("executeNoisy: ", hw.name(),
             " has a non-deterministic ideal output (p=", ideal_prob,
             "); success is counted against the dominant outcome");

    // Sites grouped by the gate they follow, for trajectory replay.
    std::vector<std::vector<int>> sites_after(
        static_cast<size_t>(num_gates));
    for (size_t i = 0; i < sites.size(); ++i)
        sites_after[static_cast<size_t>(sites[i].gateIdx)].push_back(
            static_cast<int>(i));

    TrajectoryContext ctx;
    ctx.circuit = &cc.circuit;
    ctx.sites = &sites;
    ctx.sitesAfter = &sites_after;
    ctx.measured = &measured;
    ctx.roErr = &ro_err;
    ctx.ideal = &ideal;
    ctx.checkpoints = &checkpoints;
    ctx.correctOutcome = ideal_key;
    ctx.flatHistogram = measured.size() <= kFlatHistogramBits;

    // Shard trials into chunks; chunk ci owns the RNG stream
    // (seed, ci), and chunks merge in index order below, so the result
    // is a pure function of (seed, trials, chunk size) — never of the
    // thread count.
    const int chunk_size =
        opts.chunkSize > 0 ? opts.chunkSize : kDefaultChunkSize;
    const int num_chunks = (trials + chunk_size - 1) / chunk_size;
    const uint64_t stream_seed = seed ^ 0xABCDEF1234567890ull;
    std::vector<ChunkStats> stats(static_cast<size_t>(num_chunks));
    auto run_chunk = [&](int ci) {
        int lo = ci * chunk_size;
        int n = std::min(chunk_size, trials - lo);
        runChunk(ctx, Rng::stream(stream_seed, static_cast<uint64_t>(ci)),
                 n, stats[static_cast<size_t>(ci)]);
    };
    int threads = opts.threads > 0 ? opts.threads : defaultSimThreads();
    threads = std::min(threads, num_chunks);
    if (threads <= 1) {
        for (int ci = 0; ci < num_chunks; ++ci)
            run_chunk(ci);
    } else {
        ThreadPool pool(threads);
        parallelFor(pool, num_chunks, run_chunk);
    }

    // Chunk-ordered merge keeps even the histogram's unordered-map
    // construction sequence identical across thread counts.
    int successes = 0;
    if (ctx.flatHistogram) {
        std::vector<int> total(uint64_t{1} << measured.size(), 0);
        for (const ChunkStats &s : stats) {
            successes += s.successes;
            res.simulatedTrajectories += s.simulated;
            for (size_t k = 0; k < total.size(); ++k)
                total[k] += s.flat[k];
        }
        for (size_t k = 0; k < total.size(); ++k)
            if (total[k] != 0)
                res.histogram.emplace(static_cast<uint64_t>(k), total[k]);
    } else {
        for (const ChunkStats &s : stats) {
            successes += s.successes;
            res.simulatedTrajectories += s.simulated;
            for (const auto &[key, count] : s.sparse)
                res.histogram[key] += count;
        }
    }
    res.successRate = static_cast<double>(successes) / trials;
    int modal_count = 0;
    for (const auto &[key, count] : res.histogram)
        if (count > modal_count)
            modal_count = count;
    res.correctIsModal = successes == modal_count;
    return res;
}

uint64_t
outcomeForProgram(uint64_t key, const Circuit &hw,
                  const std::vector<HwQubit> &final_map,
                  const std::vector<ProgQubit> &prog_measured)
{
    std::vector<ProgQubit> hw_measured = hw.measuredQubits();
    uint64_t out = 0;
    for (size_t k = 0; k < prog_measured.size(); ++k) {
        ProgQubit p = prog_measured[k];
        if (p < 0 || p >= static_cast<int>(final_map.size()))
            fatal("outcomeForProgram: program qubit ", p,
                  " has no final-map entry");
        HwQubit h = final_map[static_cast<size_t>(p)];
        auto it = std::find(hw_measured.begin(), hw_measured.end(), h);
        if (it == hw_measured.end())
            fatal("outcomeForProgram: hardware qubit ", h,
                  " (program qubit ", p, ") is not measured");
        size_t pos = static_cast<size_t>(it - hw_measured.begin());
        out |= ((key >> pos) & 1) << k;
    }
    return out;
}

int
defaultTrials(int fallback)
{
    return envInt("TRIQ_TRIALS", fallback, 1);
}

int
defaultSimThreads(int fallback)
{
    return envInt("TRIQ_SIM_THREADS", fallback, 1);
}

} // namespace triq
