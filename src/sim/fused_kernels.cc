/**
 * @file
 * Cache-blocked apply kernels for the gate-fusion pre-pass (see
 * sim/fusion.hh). Kept in a separate translation unit so the build can
 * give just these hot loops tuned optimization flags (TRIQ_NATIVE_KERNELS)
 * without changing code generation for the per-gate baseline paths in
 * statevector.cc — benchmarks compare the two, so the baseline must keep
 * the generic build.
 *
 * The kernels work on the raw double representation of the amplitude
 * array instead of std::complex. GCC compiles std::complex operator*
 * with an inf/nan recovery branch into __muldc3, which dominates the
 * runtime at the small state dimensions typical after qubit compaction;
 * plain real/imaginary arithmetic keeps the inner loops branch- and
 * call-free. Unitary inputs are finite by construction, so the recovery
 * path is never needed.
 *
 * When the target supports AVX2+FMA (any recent x86 under the
 * TRIQ_NATIVE_KERNELS build) the dense kernels process two interleaved
 * complex amplitudes per 256-bit vector. The whole accumulate step
 * y += x * m for a vector of two amplitudes x and a scalar matrix
 * entry m is three instructions with no lane crossing:
 *
 *     acc = fmaddsub(x, mr, fmaddsub(swap(x), mi, acc))
 *
 * (the inner fmaddsub puts mi*x.im - acc.re in even lanes and
 * mi*x.re + acc.im in odd lanes; the outer one restores the signs
 * while adding the real-part products.) The innermost state stride
 * must cover at least
 * two amplitudes for this layout; stride-1 operand patterns and
 * non-x86 builds take the scalar loops, which compute the same sums in
 * a different association order. Fused-path amplitudes were never
 * bit-identical to the per-gate path (only equivalent to ~1e-15 per
 * gate, locked by tests/test_fusion.cc), so the kernels are free to
 * pick the fastest association.
 *
 * Range structure: every dense kernel is expressed over its flattened
 * group space — group index t is the basis index with the operand bits
 * deleted, so the whole pass is [0, dim >> nq). kernels::forSegments
 * expands any sub-range of t back into maximal contiguous amplitude
 * runs and the same inner bodies run over them, which is what lets one
 * implementation serve three callers bit-identically: the full serial
 * pass, the sharded parallel pass (disjoint t-ranges per worker), and
 * the fusion pass's cache tiles (applyFused*Range over one tile's
 * groups). Per-vector-unit arithmetic never depends on where a range
 * boundary falls — ranges are aligned so two-amplitude vector units
 * are never split — so every caller computes identical bits.
 */

#include "sim/statevector.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "sim/kernel_dispatch.hh"

#if defined(__AVX2__) && defined(__FMA__)
#define TRIQ_KERNELS_AVX2 1
#include <immintrin.h>
#endif

namespace triq
{

namespace
{

/**
 * Alignment mask for a ranged kernel: bounds must be multiples of
 * 2^(q_max + 1) (range closed under the operator) and of
 * 8 * 2^nq (group-space shard/vector grain). See statevector.hh.
 */
uint64_t
rangeMask(uint64_t top_bit, uint64_t group_grain)
{
    return std::max(top_bit << 1, group_grain * 8) - 1;
}

} // namespace

#ifdef TRIQ_KERNELS_AVX2

namespace
{

/**
 * acc + x * (mr, mi) on two interleaved complex lanes. fmaddsub
 * subtracts its addend in even lanes and adds it in odd lanes, so the
 * inner fmaddsub yields [im*mi - acc.re, re*mi + acc.im] and the outer
 * one restores both signs while adding the real-part products.
 */
inline __m256d
cmulAdd2(__m256d x, __m256d mr, __m256d mi, __m256d acc)
{
    __m256d xs = _mm256_permute_pd(x, 0x5); // [im, re] per lane
    return _mm256_fmaddsub_pd(x, mr, _mm256_fmaddsub_pd(xs, mi, acc));
}

/** x * (mr, mi) on two interleaved complex lanes. */
inline __m256d
cmul2(__m256d x, __m256d mr, __m256d mi)
{
    __m256d xs = _mm256_permute_pd(x, 0x5);
    return _mm256_fmaddsub_pd(x, mr, _mm256_mul_pd(xs, mi));
}

/**
 * Stride-1 dense apply: when qubit 0 is an operand, amplitude pairs
 * (i, i|1) are adjacent, so one vector holds two *different* basis
 * states of the same group. Each loaded vector covers matrix columns
 * (h, h | c0) where c0 is qubit 0's column bit and h the column bits of
 * the k high operands; each output vector covers the same pair of rows.
 * The matrix entries are pre-splatted into per-lane coefficient vectors
 * (lanes 0-1 = first row of the pair, lanes 2-3 = second), so the inner
 * loop is plain cmulAdd2 chains over 2^k loaded vectors split into
 * per-column broadcast halves.
 *
 * `m` is the (2^{k+1})^2 row-major matrix, `c0` qubit 0's column bit,
 * `hcol[g]`/`hoff[g]` the column bits and amplitude offset (doubles) of
 * high-operand combination g, `strides` the high operands' amplitude
 * strides ascending. One vector unit covers one group; the group range
 * [t_lo, t_hi) walks them in halved-stride space (vector unit w holds
 * amplitudes 2w and 2w+1), so any sub-range computes the same bits as
 * the full pass.
 */
template <int K>
inline void
applyStride1Dense(double *ad, uint64_t t_lo, uint64_t t_hi, const Cplx *m,
                  int c0, const int *hcol, const uint64_t *hoff,
                  const uint64_t *strides)
{
    constexpr int G = 1 << K;      // high-bit combinations
    constexpr int NC = 2 * G;      // matrix dimension
    __m256d cr[G][NC], ci[G][NC];  // per-lane coefficients
    for (int g = 0; g < G; ++g) {
        const int r0 = hcol[g], r1 = hcol[g] | c0;
        for (int c = 0; c < NC; ++c) {
            const Cplx a = m[r0 * NC + c], b = m[r1 * NC + c];
            cr[g][c] = _mm256_setr_pd(a.real(), a.real(), b.real(),
                                      b.real());
            ci[g][c] = _mm256_setr_pd(a.imag(), a.imag(), b.imag(),
                                      b.imag());
        }
    }
    uint64_t vstrides[K];
    for (int j = 0; j < K; ++j)
        vstrides[j] = strides[j] >> 1;
    kernels::forSegments(
        t_lo, t_hi, vstrides, K, [&](uint64_t w0, uint64_t n) {
            for (uint64_t w = w0; w < w0 + n; ++w) {
                const uint64_t i = 2 * w;
                __m256d v[G], dup[NC];
                for (int g = 0; g < G; ++g) {
                    v[g] = _mm256_loadu_pd(ad + 2 * i + hoff[g]);
                    dup[hcol[g]] =
                        _mm256_permute2f128_pd(v[g], v[g], 0x00);
                    dup[hcol[g] | c0] =
                        _mm256_permute2f128_pd(v[g], v[g], 0x11);
                }
                for (int g = 0; g < G; ++g) {
                    __m256d acc = cmul2(dup[0], cr[g][0], ci[g][0]);
                    for (int c = 1; c < NC; ++c)
                        acc = cmulAdd2(dup[c], cr[g][c], ci[g][c], acc);
                    _mm256_storeu_pd(ad + 2 * i + hoff[g], acc);
                }
            }
        });
}

} // namespace

#endif // TRIQ_KERNELS_AVX2

void
StateVector::fused1Groups(const Cplx *m, int q, uint64_t t_lo,
                          uint64_t t_hi)
{
    const uint64_t bit = uint64_t{1} << q;
    const double m00r = m[0].real(), m00i = m[0].imag();
    const double m01r = m[1].real(), m01i = m[1].imag();
    const double m10r = m[2].real(), m10i = m[2].imag();
    const double m11r = m[3].real(), m11i = m[3].imag();
    double *ad = reinterpret_cast<double *>(amps_.data());
#ifdef TRIQ_KERNELS_AVX2
    if (bit == 1) {
        // Adjacent pairs: one vector holds both amplitudes of group t;
        // split it into broadcast halves and apply both matrix rows at
        // once.
        const __m256d ar = _mm256_setr_pd(m00r, m00r, m10r, m10r);
        const __m256d ai = _mm256_setr_pd(m00i, m00i, m10i, m10i);
        const __m256d br = _mm256_setr_pd(m01r, m01r, m11r, m11r);
        const __m256d bi = _mm256_setr_pd(m01i, m01i, m11i, m11i);
        for (uint64_t t = t_lo; t < t_hi; ++t) {
            __m256d v = _mm256_loadu_pd(ad + 4 * t);
            __m256d xlo = _mm256_permute2f128_pd(v, v, 0x00);
            __m256d xhi = _mm256_permute2f128_pd(v, v, 0x11);
            __m256d y = cmulAdd2(xhi, br, bi, cmul2(xlo, ar, ai));
            _mm256_storeu_pd(ad + 4 * t, y);
        }
        return;
    }
    {
        const __m256d r00 = _mm256_set1_pd(m00r), i00 = _mm256_set1_pd(m00i);
        const __m256d r01 = _mm256_set1_pd(m01r), i01 = _mm256_set1_pd(m01i);
        const __m256d r10 = _mm256_set1_pd(m10r), i10 = _mm256_set1_pd(m10i);
        const __m256d r11 = _mm256_set1_pd(m11r), i11 = _mm256_set1_pd(m11i);
        kernels::forSegments(
            t_lo, t_hi, &bit, 1, [&](uint64_t i0, uint64_t n) {
                for (uint64_t i = i0; i < i0 + n; i += 2) {
                    double *p0 = ad + 2 * i;
                    double *p1 = ad + 2 * (i | bit);
                    __m256d x0 = _mm256_loadu_pd(p0);
                    __m256d x1 = _mm256_loadu_pd(p1);
                    __m256d y0 =
                        cmulAdd2(x1, r01, i01, cmul2(x0, r00, i00));
                    __m256d y1 =
                        cmulAdd2(x1, r11, i11, cmul2(x0, r10, i10));
                    _mm256_storeu_pd(p0, y0);
                    _mm256_storeu_pd(p1, y1);
                }
            });
        return;
    }
#else
    kernels::forSegments(
        t_lo, t_hi, &bit, 1, [&](uint64_t i0, uint64_t n) {
            for (uint64_t i = i0; i < i0 + n; ++i) {
                double *p0 = ad + 2 * i;
                double *p1 = ad + 2 * (i | bit);
                const double x0 = p0[0], y0 = p0[1];
                const double x1 = p1[0], y1 = p1[1];
                p0[0] = m00r * x0 - m00i * y0 + m01r * x1 - m01i * y1;
                p0[1] = m00r * y0 + m00i * x0 + m01r * y1 + m01i * x1;
                p1[0] = m10r * x0 - m10i * y0 + m11r * x1 - m11i * y1;
                p1[1] = m10r * y0 + m10i * x0 + m11r * y1 + m11i * x1;
            }
        });
#endif
}

void
StateVector::applyFused1(const Cplx *m, int q)
{
    checkQubit(q);
    kernels::shard(kernelThreads_, dim() >> 1, 8,
                   static_cast<double>(dim()),
                   [&](uint64_t lo, uint64_t hi) {
                       fused1Groups(m, q, lo, hi);
                   });
}

void
StateVector::applyFused1Range(const Cplx *m, int q, uint64_t lo,
                              uint64_t hi)
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    if (((lo | hi) & rangeMask(bit, 2)) || hi > dim())
        panic("applyFused1Range: misaligned range");
    fused1Groups(m, q, lo >> 1, hi >> 1);
}

void
StateVector::fused2Groups(const Cplx *m, int q0, int q1, uint64_t t_lo,
                          uint64_t t_hi)
{
    const uint64_t b0 = uint64_t{1} << q0;
    const uint64_t b1 = uint64_t{1} << q1;
    const uint64_t bl = std::min(b0, b1);
    const uint64_t bh = std::max(b0, b1);
    const uint64_t strides[2] = {bl, bh};
    const double *md = reinterpret_cast<const double *>(m);
    double *ad = reinterpret_cast<double *>(amps_.data());
#ifdef TRIQ_KERNELS_AVX2
    if (bl >= 2) {
        kernels::forSegments(
            t_lo, t_hi, strides, 2, [&](uint64_t i0, uint64_t n) {
                for (uint64_t i = i0; i < i0 + n; i += 2) {
                    double *p[4] = {ad + 2 * i, ad + 2 * (i | b0),
                                    ad + 2 * (i | b1),
                                    ad + 2 * (i | b0 | b1)};
                    __m256d x[4];
                    for (int k = 0; k < 4; ++k)
                        x[k] = _mm256_loadu_pd(p[k]);
                    for (int r = 0; r < 4; ++r) {
                        const double *row = md + 8 * r;
                        __m256d acc =
                            cmul2(x[0], _mm256_set1_pd(row[0]),
                                  _mm256_set1_pd(row[1]));
                        for (int c = 1; c < 4; ++c)
                            acc = cmulAdd2(
                                x[c], _mm256_set1_pd(row[2 * c]),
                                _mm256_set1_pd(row[2 * c + 1]), acc);
                        _mm256_storeu_pd(p[r], acc);
                    }
                }
            });
        return;
    }
    {
        // Qubit 0 is an operand: pairs (i, i|1) are adjacent.
        const int c0 = b0 == 1 ? 1 : 2;
        const int hcol[2] = {0, b0 == 1 ? 2 : 1};
        const uint64_t hoff[2] = {0, 2 * bh};
        const uint64_t hstrides[1] = {bh};
        applyStride1Dense<1>(ad, t_lo, t_hi, m, c0, hcol, hoff,
                             hstrides);
        return;
    }
#endif
    kernels::forSegments(
        t_lo, t_hi, strides, 2, [&](uint64_t i0, uint64_t n) {
            for (uint64_t i = i0; i < i0 + n; ++i) {
                double *p[4] = {ad + 2 * i, ad + 2 * (i | b0),
                                ad + 2 * (i | b1),
                                ad + 2 * (i | b0 | b1)};
                double xr[4], xi[4];
                for (int k = 0; k < 4; ++k) {
                    xr[k] = p[k][0];
                    xi[k] = p[k][1];
                }
                for (int r = 0; r < 4; ++r) {
                    const double *row = md + 8 * r;
                    double sr = 0.0, si = 0.0;
                    for (int c = 0; c < 4; ++c) {
                        const double br = row[2 * c];
                        const double bi = row[2 * c + 1];
                        sr += br * xr[c] - bi * xi[c];
                        si += br * xi[c] + bi * xr[c];
                    }
                    p[r][0] = sr;
                    p[r][1] = si;
                }
            }
        });
}

void
StateVector::applyFused2(const Cplx *m, int q0, int q1)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        panic("applyFused2: identical qubits");
    kernels::shard(kernelThreads_, dim() >> 2, 8, 2.0 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       fused2Groups(m, q0, q1, lo, hi);
                   });
}

void
StateVector::applyFused2Range(const Cplx *m, int q0, int q1, uint64_t lo,
                              uint64_t hi)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        panic("applyFused2Range: identical qubits");
    const uint64_t top = uint64_t{1} << std::max(q0, q1);
    if (((lo | hi) & rangeMask(top, 4)) || hi > dim())
        panic("applyFused2Range: misaligned range");
    fused2Groups(m, q0, q1, lo >> 2, hi >> 2);
}

void
StateVector::fused3Groups(const Cplx *m, int q0, int q1, int q2,
                          uint64_t t_lo, uint64_t t_hi)
{
    const uint64_t b0 = uint64_t{1} << q0;
    const uint64_t b1 = uint64_t{1} << q1;
    const uint64_t b2 = uint64_t{1} << q2;
    uint64_t s0 = b0, s1 = b1, s2 = b2; // ascending copies
    if (s0 > s1)
        std::swap(s0, s1);
    if (s1 > s2)
        std::swap(s1, s2);
    if (s0 > s1)
        std::swap(s0, s1);
    const uint64_t strides[3] = {s0, s1, s2};
    const double *md = reinterpret_cast<const double *>(m);
    double *ad = reinterpret_cast<double *>(amps_.data());
#ifdef TRIQ_KERNELS_AVX2
    if (s0 >= 2) {
        kernels::forSegments(
            t_lo, t_hi, strides, 3, [&](uint64_t i0, uint64_t n) {
                for (uint64_t i = i0; i < i0 + n; i += 2) {
                    double *p[8];
                    __m256d x[8];
                    for (int k = 0; k < 8; ++k) {
                        uint64_t j = i;
                        if (k & 1)
                            j |= b0;
                        if (k & 2)
                            j |= b1;
                        if (k & 4)
                            j |= b2;
                        p[k] = ad + 2 * j;
                        x[k] = _mm256_loadu_pd(p[k]);
                    }
                    for (int r = 0; r < 8; ++r) {
                        const double *row = md + 16 * r;
                        __m256d acc =
                            cmul2(x[0], _mm256_set1_pd(row[0]),
                                  _mm256_set1_pd(row[1]));
                        for (int col = 1; col < 8; ++col)
                            acc = cmulAdd2(
                                x[col], _mm256_set1_pd(row[2 * col]),
                                _mm256_set1_pd(row[2 * col + 1]), acc);
                        _mm256_storeu_pd(p[r], acc);
                    }
                }
            });
        return;
    }
    {
        // Qubit 0 is an operand: pairs (i, i|1) are adjacent. Column
        // bit k belongs to the operand with stride b_k; sort the two
        // high operands by stride for the iteration.
        const uint64_t bq[3] = {b0, b1, b2};
        int k0 = 0, ka = -1, kb = -1;
        for (int k = 0; k < 3; ++k) {
            if (bq[k] == 1)
                k0 = k;
            else if (ka == -1)
                ka = k;
            else
                kb = k;
        }
        if (bq[ka] > bq[kb])
            std::swap(ka, kb);
        const int c0 = 1 << k0, ca = 1 << ka, cb = 1 << kb;
        const uint64_t sa = bq[ka], sb = bq[kb];
        const int hcol[4] = {0, ca, cb, ca | cb};
        const uint64_t hoff[4] = {0, 2 * sa, 2 * sb, 2 * (sa | sb)};
        const uint64_t hstrides[2] = {sa, sb};
        applyStride1Dense<2>(ad, t_lo, t_hi, m, c0, hcol, hoff,
                             hstrides);
        return;
    }
#endif
    kernels::forSegments(
        t_lo, t_hi, strides, 3, [&](uint64_t i0, uint64_t n) {
            for (uint64_t i = i0; i < i0 + n; ++i) {
                double *p[8];
                double xr[8], xi[8];
                for (int k = 0; k < 8; ++k) {
                    uint64_t j = i;
                    if (k & 1)
                        j |= b0;
                    if (k & 2)
                        j |= b1;
                    if (k & 4)
                        j |= b2;
                    p[k] = ad + 2 * j;
                    xr[k] = p[k][0];
                    xi[k] = p[k][1];
                }
                for (int r = 0; r < 8; ++r) {
                    const double *row = md + 16 * r;
                    double sr = 0.0, si = 0.0;
                    for (int col = 0; col < 8; ++col) {
                        const double br = row[2 * col];
                        const double bi = row[2 * col + 1];
                        sr += br * xr[col] - bi * xi[col];
                        si += br * xi[col] + bi * xr[col];
                    }
                    p[r][0] = sr;
                    p[r][1] = si;
                }
            }
        });
}

void
StateVector::applyFused3(const Cplx *m, int q0, int q1, int q2)
{
    checkQubit(q0);
    checkQubit(q1);
    checkQubit(q2);
    if (q0 == q1 || q0 == q2 || q1 == q2)
        panic("applyFused3: identical qubits");
    kernels::shard(kernelThreads_, dim() >> 3, 8, 4.0 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       fused3Groups(m, q0, q1, q2, lo, hi);
                   });
}

void
StateVector::applyFused3Range(const Cplx *m, int q0, int q1, int q2,
                              uint64_t lo, uint64_t hi)
{
    checkQubit(q0);
    checkQubit(q1);
    checkQubit(q2);
    if (q0 == q1 || q0 == q2 || q1 == q2)
        panic("applyFused3Range: identical qubits");
    const uint64_t top = uint64_t{1} << std::max({q0, q1, q2});
    if (((lo | hi) & rangeMask(top, 8)) || hi > dim())
        panic("applyFused3Range: misaligned range");
    fused3Groups(m, q0, q1, q2, lo >> 3, hi >> 3);
}

void
StateVector::diagonalRange(const Cplx *diag, const int *qubits,
                           int num_qubits, uint64_t lo, uint64_t hi)
{
    const double *dd = reinterpret_cast<const double *>(diag);
    double *ad = reinterpret_cast<double *>(amps_.data());

    // Gathering the support bits per amplitude (a shift/or chain over
    // num_qubits) costs more than the complex multiply itself. Instead,
    // precompute the table-index contribution of the low and middle 8
    // basis bits once; per amplitude the local index is then two
    // lookups (plus a rare residual term for qubits above bit 15).
    uint32_t lo8[256], mid[256];
    uint32_t contrib_lo[8] = {}, contrib_mid[8] = {};
    bool has_mid = false, has_res = false;
    for (int k = 0; k < num_qubits; ++k) {
        const int q = qubits[k];
        if (q < 8) {
            contrib_lo[q] |= uint32_t{1} << k;
        } else if (q < 16) {
            contrib_mid[q - 8] |= uint32_t{1} << k;
            has_mid = true;
        } else {
            has_res = true;
        }
    }
    // Fill each table from its already-filled prefix: entry b extends
    // entry b with its lowest bit cleared.
    lo8[0] = 0;
    const uint64_t lo_n = std::min(dim(), uint64_t{256});
    for (uint64_t b = 1; b < lo_n; ++b) {
        const uint64_t low = b & (0 - b);
        lo8[b] = lo8[b ^ low] | contrib_lo[std::countr_zero(low)];
    }
    if (has_mid) {
        mid[0] = 0;
        const uint64_t mid_n = std::min(dim() >> 8, uint64_t{256});
        for (uint64_t b = 1; b < mid_n; ++b) {
            const uint64_t low = b & (0 - b);
            mid[b] = mid[b ^ low] | contrib_mid[std::countr_zero(low)];
        }
    }
    auto localIdx = [&](uint64_t i) -> uint32_t {
        uint32_t local = lo8[i & 255];
        if (has_mid)
            local |= mid[(i >> 8) & 255];
        if (has_res)
            for (int k = 0; k < num_qubits; ++k)
                if (qubits[k] >= 16)
                    local |= ((i >> qubits[k]) & 1) << k;
        return local;
    };

#ifdef TRIQ_KERNELS_AVX2
    for (uint64_t i = lo; i < hi; i += 2) {
        const uint32_t l0 = localIdx(i), l1 = localIdx(i + 1);
        __m256d c = _mm256_set_m128d(_mm_loadu_pd(dd + 2 * l1),
                                     _mm_loadu_pd(dd + 2 * l0));
        __m256d x = _mm256_loadu_pd(ad + 2 * i);
        __m256d y = cmul2(x, _mm256_movedup_pd(c),
                          _mm256_permute_pd(c, 0xF));
        _mm256_storeu_pd(ad + 2 * i, y);
    }
#else
    for (uint64_t i = lo; i < hi; ++i) {
        const uint32_t local = localIdx(i);
        const double br = dd[2 * local], bi = dd[2 * local + 1];
        const double xr = ad[2 * i], xi = ad[2 * i + 1];
        ad[2 * i] = br * xr - bi * xi;
        ad[2 * i + 1] = br * xi + bi * xr;
    }
#endif
}

void
StateVector::applyDiagonal(const Cplx *diag, const int *qubits,
                           int num_qubits)
{
    if (num_qubits < 1)
        panic("applyDiagonal: need at least one qubit");
    for (int k = 0; k < num_qubits; ++k)
        checkQubit(qubits[k]);
    // Sharded callers rebuild the (tiny) index tables per range; the
    // threshold in kernels::shard guarantees ranges are large enough
    // that the rebuild is noise.
    kernels::shard(kernelThreads_, dim(), 8, 0.75 * dim(),
                   [&](uint64_t lo, uint64_t hi) {
                       diagonalRange(diag, qubits, num_qubits, lo, hi);
                   });
}

void
StateVector::applyDiagonalRange(const Cplx *diag, const int *qubits,
                                int num_qubits, uint64_t lo, uint64_t hi)
{
    if (num_qubits < 1)
        panic("applyDiagonalRange: need at least one qubit");
    for (int k = 0; k < num_qubits; ++k)
        checkQubit(qubits[k]);
    if (((lo | hi) & 7) || hi > dim())
        panic("applyDiagonalRange: misaligned range");
    diagonalRange(diag, qubits, num_qubits, lo, hi);
}

} // namespace triq
