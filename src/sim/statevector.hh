/**
 * @file
 * Dense state-vector quantum simulator.
 *
 * This is the substrate that stands in for the paper's real machines: the
 * noisy executor evolves compiled circuits through this simulator with
 * sampled error events. It is also used ideally (no noise) to determine
 * each benchmark's correct answer and to verify compiler passes.
 *
 * Basis convention matches core/unitary.hh: qubit q is bit q of the basis
 * index.
 */

#ifndef TRIQ_SIM_STATEVECTOR_HH
#define TRIQ_SIM_STATEVECTOR_HH

#include <cstdint>
#include <vector>

#include "common/matrix.hh"
#include "common/rng.hh"
#include "core/circuit.hh"

namespace triq
{

/**
 * A dense 2^n-amplitude quantum state with gate application, Pauli-error
 * injection and measurement sampling.
 */
class StateVector
{
  public:
    /** Construct n qubits in |0...0>. @pre 0 < n <= maxQubits(). */
    explicit StateVector(int num_qubits);

    /**
     * Largest register this simulator accepts. 30 qubits is a 16 GiB
     * state — the constant is a sanity bound on the *representation*,
     * not an admission decision: whether a given register actually
     * fits this process is decided by the ResourceGovernor /
     * sim_cost admission path, which rejects oversized requests as
     * structured sim.oom / server.budget errors before any amplitude
     * array is allocated.
     */
    static constexpr int maxQubits() { return 30; }

    int numQubits() const { return numQubits_; }

    /**
     * Intra-state kernel threading: how gate kernels shard their
     * amplitude loops. 1 (the default) is the true serial path — no
     * pool, no scheduler; 0 lets the common/sched.hh cost model decide
     * per kernel pass (small registers stay serial); N > 1 forces N
     * workers. Results are bit-identical for every value: shards are
     * disjoint amplitude groups with identical per-group arithmetic
     * and no cross-shard reductions.
     *
     * Only enable threading (0 or N > 1) on a state driven from the
     * control thread: kernels fan out on the shared process pool,
     * whose jobs must not submit to it (see common/thread_pool.hh).
     * The executor enables it exactly when its own trajectory fan-out
     * is serial.
     */
    void setKernelThreads(int setting) { kernelThreads_ = setting < 0 ? 0 : setting; }
    int kernelThreadSetting() const { return kernelThreads_; }

    /** Reset to |0...0>. */
    void reset();

    /** Dimension of the state (2^n). */
    uint64_t dim() const { return amps_.size(); }

    /** Amplitude of a basis state. */
    Cplx amplitude(uint64_t basis) const;

    /** Probability of a basis state. */
    double probability(uint64_t basis) const;

    /** Apply a unitary IR gate (any arity; Barrier is a no-op). */
    void applyGate(const Gate &g);

    /** Apply every unitary gate of a circuit (Measure not allowed). */
    void applyCircuit(const Circuit &c);

    /** Apply a 2x2 matrix to qubit q. */
    void applyMatrix1(const Matrix &m, int q);

    /** Apply a 4x4 matrix to qubits (q0 = local bit 0, q1 = bit 1). */
    void applyMatrix2(const Matrix &m, int q0, int q1);

    /** Fast Pauli applications used by the noise model. */
    void applyX(int q);
    void applyY(int q);
    void applyZ(int q);

    /**
     * Specialized kernels for the gate families that dominate compiled
     * circuits (diagonal phases, CNOT/CZ, SWAP). applyGate dispatches
     * here instead of the general 2x2/4x4 matrix path; they are exact,
     * so results match the matrix path bit for bit.
     */
    void applyPhase1(int q, Cplx phase); //!< diag(1, phase) on qubit q.
    void applyRz(int q, double theta);   //!< diag(e^-it/2, e^+it/2).
    void applyCnot(int control, int target);
    void applyCz(int a, int b);
    void applyCphase(int a, int b, double lambda);
    void applySwap(int a, int b);

    /**
     * Cache-blocked dense kernels used by the gate-fusion pass
     * (sim/fusion.hh). Unlike applyMatrix1/2 they enumerate only the
     * amplitudes they touch (no skip branch), and the 3-qubit variant
     * completes the ladder for fused regions. Matrices are row-major
     * with local qubit i = bit i; per-amplitude arithmetic matches the
     * matrix path term for term.
     */
    void applyFused1(const Cplx *m, int q);             //!< m: 2x2.
    void applyFused2(const Cplx *m, int q0, int q1);    //!< m: 4x4.
    void applyFused3(const Cplx *m, int q0, int q1, int q2); //!< 8x8.

    /**
     * Multiply by a diagonal operator supported on a qubit subset:
     * amps[i] *= diag[local(i)] where bit k of local(i) is bit
     * qubits[k] of i. One pass over the state regardless of how many
     * diagonal gates were collapsed into the table.
     */
    void applyDiagonal(const Cplx *diag, const int *qubits,
                       int num_qubits);

    /**
     * Tile-ranged variants of the fused kernels, used by the fusion
     * pass's cache-blocked tile groups (sim/fusion.hh): apply the
     * operator to the amplitude range [lo, hi) only. Expert interface
     * with alignment preconditions instead of runtime dispatch:
     *
     * @pre lo and hi are multiples of 2^(q_max + 1) (every operand
     *      stride divides the range, so it is closed under the
     *      operator) AND of 8 * 2^nq (shard/vector alignment of the
     *      flattened group space); hi <= dim(). The fusion pass
     *      guarantees both by requiring tile size >= 2^(nq + 3) and
     *      all operands below the tile boundary.
     *
     * The range is applied serially (tile loops parallelize over
     * tiles, not within them) with per-group arithmetic identical to
     * the full-state kernels, so tiling is bit-exact.
     */
    void applyFused1Range(const Cplx *m, int q, uint64_t lo, uint64_t hi);
    void applyFused2Range(const Cplx *m, int q0, int q1, uint64_t lo,
                          uint64_t hi);
    void applyFused3Range(const Cplx *m, int q0, int q1, int q2,
                          uint64_t lo, uint64_t hi);
    void applyDiagonalRange(const Cplx *diag, const int *qubits,
                            int num_qubits, uint64_t lo, uint64_t hi);

    /**
     * Sample a full measurement outcome (all qubits) without collapsing.
     * @return Basis index distributed according to |amplitude|^2.
     */
    uint64_t sampleMeasurement(Rng &rng) const;

    /**
     * Deterministic variant: map a caller-supplied uniform draw
     * r in [0, 1) to a basis index by the same cumulative scan as
     * sampleMeasurement(Rng&). Lets the dedup executor pre-draw each
     * trial's uniform and sample many trials from one shared state
     * while staying bit-identical to the per-trial path.
     */
    uint64_t sampleMeasurement(double r) const;

    /**
     * The most probable basis state.
     * @param prob_out When non-null, receives that state's probability.
     */
    uint64_t dominantBasisState(double *prob_out = nullptr) const;

    /** Sum of probabilities (1.0 when normalized). */
    double normSquared() const;

    /** Fidelity |<this|other>|^2. @pre equal sizes. */
    double fidelityWith(const StateVector &other) const;

    /**
     * Raw amplitude storage. Expert interface: the density-matrix
     * simulator vectorizes rho into a StateVector and mixes channel
     * branches by direct amplitude arithmetic.
     */
    std::vector<Cplx> &amps() { return amps_; }
    const std::vector<Cplx> &amps() const { return amps_; }

  private:
    int numQubits_;
    std::vector<Cplx> amps_;
    int kernelThreads_ = 1; //!< See setKernelThreads().

    void checkQubit(int q) const;

    /** Group-space bodies shared by the full and ranged fused kernels. */
    void fused1Groups(const Cplx *m, int q, uint64_t t_lo, uint64_t t_hi);
    void fused2Groups(const Cplx *m, int q0, int q1, uint64_t t_lo,
                      uint64_t t_hi);
    void fused3Groups(const Cplx *m, int q0, int q1, int q2,
                      uint64_t t_lo, uint64_t t_hi);
    void diagonalRange(const Cplx *diag, const int *qubits,
                       int num_qubits, uint64_t lo, uint64_t hi);
};

/**
 * Run `c` ideally from |0...0> and return the outcome distribution
 * restricted to the measured qubits (in ascending qubit order: measured
 * qubit i contributes bit i of the returned index).
 *
 * @return Probability vector of size 2^(#measured qubits).
 */
std::vector<double> idealMeasurementDistribution(const Circuit &c);

} // namespace triq

#endif // TRIQ_SIM_STATEVECTOR_HH
