#include "sim/density.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/unitary.hh"
#include "sim/compact.hh"
#include "sim/executor.hh"
#include "sim/noise.hh"

namespace triq
{

namespace
{

/** Entry-wise complex conjugate. */
Matrix
conjugated(const Matrix &m)
{
    Matrix out(m.rows(), m.cols());
    for (int r = 0; r < m.rows(); ++r)
        for (int c = 0; c < m.cols(); ++c)
            out(r, c) = std::conj(m(r, c));
    return out;
}

} // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : numQubits_(num_qubits), vec_(2 * num_qubits)
{
    if (num_qubits < 1 || num_qubits > maxQubits())
        fatal("DensityMatrix: qubit count ", num_qubits, " outside [1, ",
              maxQubits(), "]");
}

void
DensityMatrix::reset()
{
    vec_.reset();
}

void
DensityMatrix::applyBothSides(const Gate &g)
{
    Matrix m = gateMatrix(g);
    Matrix mc = conjugated(m);
    switch (g.arity()) {
      case 1:
        vec_.applyMatrix1(m, g.qubit(0));
        vec_.applyMatrix1(mc, g.qubit(0) + numQubits_);
        return;
      case 2:
        vec_.applyMatrix2(m, g.qubit(0), g.qubit(1));
        vec_.applyMatrix2(mc, g.qubit(0) + numQubits_,
                          g.qubit(1) + numQubits_);
        return;
      default:
        fatal("DensityMatrix: decompose ", g.str(),
              " before density-matrix simulation");
    }
}

void
DensityMatrix::applyGate(const Gate &g)
{
    if (g.kind == GateKind::Barrier || g.kind == GateKind::I)
        return;
    if (g.kind == GateKind::Measure)
        panic("DensityMatrix::applyGate: Measure is not unitary");
    applyBothSides(g);
}

void
DensityMatrix::applyCircuit(const Circuit &c)
{
    if (c.numQubits() != numQubits_)
        fatal("DensityMatrix::applyCircuit: register width mismatch");
    for (const auto &g : c.gates())
        if (g.kind != GateKind::Measure)
            applyGate(g);
}

void
DensityMatrix::applyPauliChannel1(int q, double p)
{
    if (p <= 0.0)
        return;
    StateVector before = vec_;
    for (auto &a : vec_.amps())
        a *= 1.0 - p;
    const double w = p / 3.0;
    for (GateKind pk : {GateKind::X, GateKind::Y, GateKind::Z}) {
        StateVector branch = before;
        Gate g;
        g.kind = pk;
        g.qubits[0] = q;
        Matrix m = gateMatrix(g);
        branch.applyMatrix1(m, q);
        branch.applyMatrix1(conjugated(m), q + numQubits_);
        for (size_t i = 0; i < vec_.amps().size(); ++i)
            vec_.amps()[i] += w * branch.amps()[i];
    }
}

void
DensityMatrix::applyPauliChannel2(int q0, int q1, double p)
{
    if (p <= 0.0)
        return;
    StateVector before = vec_;
    for (auto &a : vec_.amps())
        a *= 1.0 - p;
    const double w = p / 15.0;
    const GateKind paulis[3] = {GateKind::X, GateKind::Y, GateKind::Z};
    for (int code = 1; code < 16; ++code) {
        StateVector branch = before;
        int p0 = code & 3, p1 = (code >> 2) & 3;
        auto apply_one = [&](int which, int q) {
            if (which == 0)
                return;
            Gate g;
            g.kind = paulis[which - 1];
            g.qubits[0] = q;
            Matrix m = gateMatrix(g);
            branch.applyMatrix1(m, q);
            branch.applyMatrix1(conjugated(m), q + numQubits_);
        };
        apply_one(p0, q0);
        apply_one(p1, q1);
        for (size_t i = 0; i < vec_.amps().size(); ++i)
            vec_.amps()[i] += w * branch.amps()[i];
    }
}

void
DensityMatrix::applyDephasing(int q, double p)
{
    if (p <= 0.0)
        return;
    StateVector before = vec_;
    for (auto &a : vec_.amps())
        a *= 1.0 - p;
    StateVector branch = before;
    branch.applyZ(q);
    branch.applyZ(q + numQubits_); // conj(Z) == Z.
    for (size_t i = 0; i < vec_.amps().size(); ++i)
        vec_.amps()[i] += p * branch.amps()[i];
}

double
DensityMatrix::probability(uint64_t basis) const
{
    if (basis >= (uint64_t{1} << numQubits_))
        panic("DensityMatrix::probability: basis out of range");
    uint64_t idx = basis | (basis << numQubits_);
    return vec_.amps()[idx].real();
}

double
DensityMatrix::trace() const
{
    double t = 0.0;
    for (uint64_t b = 0; b < (uint64_t{1} << numQubits_); ++b)
        t += probability(b);
    return t;
}

std::vector<double>
DensityMatrix::measurementDistribution(
    const std::vector<ProgQubit> &measured) const
{
    std::vector<double> out(uint64_t{1} << measured.size(), 0.0);
    for (uint64_t b = 0; b < (uint64_t{1} << numQubits_); ++b) {
        double pr = probability(b);
        if (pr == 0.0)
            continue;
        uint64_t key = 0;
        for (size_t k = 0; k < measured.size(); ++k)
            key |= ((b >> measured[k]) & 1) << k;
        out[key] += pr;
    }
    return out;
}

double
exactSuccessProbability(const Circuit &hw, const Device &dev,
                        const Calibration &calib)
{
    std::vector<ErrorSite> sites =
        collectErrorSites(hw, dev.topology(), calib);
    CompactCircuit cc = compactCircuit(hw);
    if (cc.circuit.numQubits() > DensityMatrix::maxQubits())
        fatal("exactSuccessProbability: ", cc.circuit.numQubits(),
              " active qubits exceed the density-matrix limit of ",
              DensityMatrix::maxQubits());
    for (auto &s : sites) {
        s.q0 = cc.hwToCompact[static_cast<size_t>(s.q0)];
        if (s.q1 != -1)
            s.q1 = cc.hwToCompact[static_cast<size_t>(s.q1)];
    }
    std::vector<ProgQubit> measured = cc.circuit.measuredQubits();
    if (measured.empty())
        fatal("exactSuccessProbability: circuit measures no qubits");

    // The benchmark's correct answer: dominant ideal marginal outcome.
    std::vector<double> ideal = idealMeasurementDistribution(cc.circuit);
    uint64_t correct = 0;
    double best = -1.0;
    for (uint64_t k = 0; k < ideal.size(); ++k)
        if (ideal[k] > best) {
            best = ideal[k];
            correct = k;
        }

    // Sites grouped by preceding gate, as in the executor.
    std::vector<std::vector<int>> sites_after(
        static_cast<size_t>(cc.circuit.numGates()));
    for (size_t i = 0; i < sites.size(); ++i)
        sites_after[static_cast<size_t>(sites[i].gateIdx)].push_back(
            static_cast<int>(i));

    DensityMatrix rho(cc.circuit.numQubits());
    // Runs on the caller's (control) thread, so the vectorized state
    // may shard its kernels; channel branches copy the setting with
    // the state. Probabilities are bit-identical for any setting.
    rho.setKernelThreads(defaultKernelThreads(1));
    for (int gi = 0; gi < cc.circuit.numGates(); ++gi) {
        const Gate &g = cc.circuit.gate(gi);
        if (g.kind != GateKind::Measure)
            rho.applyGate(g);
        for (int si : sites_after[static_cast<size_t>(gi)]) {
            const ErrorSite &s = sites[static_cast<size_t>(si)];
            if (s.idle)
                rho.applyDephasing(s.q0, s.prob);
            else if (s.q1 == -1)
                rho.applyPauliChannel1(s.q0, s.prob);
            else
                rho.applyPauliChannel2(s.q0, s.q1, s.prob);
        }
    }

    std::vector<double> dist = rho.measurementDistribution(measured);
    // Fold classical readout flips: the observed key matches `correct`
    // when each bit either matches and survives, or mismatches and
    // flips.
    double success = 0.0;
    for (uint64_t key = 0; key < dist.size(); ++key) {
        if (dist[key] == 0.0)
            continue;
        double w = 1.0;
        for (size_t k = 0; k < measured.size(); ++k) {
            HwQubit hq = cc.compactToHw[static_cast<size_t>(measured[k])];
            double ro = calib.errRO[static_cast<size_t>(hq)];
            bool match = ((key >> k) & 1) == ((correct >> k) & 1);
            w *= match ? 1.0 - ro : ro;
        }
        success += dist[key] * w;
    }
    return success;
}

} // namespace triq
