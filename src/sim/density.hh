/**
 * @file
 * Density-matrix simulator: exact noise-averaged evolution for small
 * registers.
 *
 * Where the trajectory executor (sim/executor.hh) *samples* the
 * stochastic-Pauli noise model, this simulator evolves the full density
 * matrix through the same model and returns the exact success
 * probability — no Monte-Carlo error. It is the reference the executor
 * is validated against, and a fast alternative for sweeps over small
 * (<= ~7 qubit) compiled circuits.
 *
 * Implementation: rho is stored vectorized. With rows in bits [0, n)
 * and columns in bits [n, 2n), left-multiplying by U is a gate on the
 * row bits and right-multiplying by U^dagger is the conjugate gate on
 * the column bits — so the state-vector kernels do all the work.
 */

#ifndef TRIQ_SIM_DENSITY_HH
#define TRIQ_SIM_DENSITY_HH

#include "device/device.hh"
#include "sim/statevector.hh"

namespace triq
{

/** A density matrix over up to maxQubits() qubits. */
class DensityMatrix
{
  public:
    /** Construct n qubits in |0...0><0...0|. */
    explicit DensityMatrix(int num_qubits);

    /** Largest register (the vectorized form uses 2n qubits). */
    static constexpr int maxQubits() { return StateVector::maxQubits() / 2; }

    int numQubits() const { return numQubits_; }

    /**
     * Kernel threading for the underlying vectorized state — same
     * contract and bit-identity guarantee as
     * StateVector::setKernelThreads (every channel below is a convex
     * mix of gate kernels on that state, so probabilities are
     * bit-identical for any setting). Only enable on a matrix driven
     * from the control thread.
     */
    void setKernelThreads(int setting) { vec_.setKernelThreads(setting); }
    int kernelThreadSetting() const { return vec_.kernelThreadSetting(); }

    /** Reset to the ground-state projector. */
    void reset();

    /** Apply a unitary IR gate: rho -> U rho U^dagger. */
    void applyGate(const Gate &g);

    /** Apply all unitary gates of a circuit (Measure skipped). */
    void applyCircuit(const Circuit &c);

    /**
     * Uniform Pauli channel on one qubit: with probability p, one of
     * {X, Y, Z} uniformly (the 1Q gate-error model of sim/noise.hh).
     */
    void applyPauliChannel1(int q, double p);

    /**
     * Uniform two-qubit Pauli channel: with probability p, one of the
     * fifteen non-identity Pauli pairs uniformly.
     */
    void applyPauliChannel2(int q0, int q1, double p);

    /** Dephasing: with probability p, Z (the idle-noise model). */
    void applyDephasing(int q, double p);

    /** Classical bit-flip on measurement outcomes is handled by the
     * caller (readout error acts on classical bits, not on rho). */

    /** Diagonal element <basis|rho|basis> (a probability). */
    double probability(uint64_t basis) const;

    /** Trace (1.0 for a valid state). */
    double trace() const;

    /**
     * Outcome distribution over `measured` qubits (ascending order
     * defines key bits, matching the executor's convention).
     */
    std::vector<double>
    measurementDistribution(const std::vector<ProgQubit> &measured) const;

  private:
    int numQubits_;
    StateVector vec_; // Vectorized rho over 2n qubits.

    /** Apply gate g on the row bits and conj(g) on the column bits. */
    void applyBothSides(const Gate &g);
};

/**
 * Exact success probability of a translated hardware circuit under the
 * same error sites the trajectory executor samples (gate Paulis, idle
 * dephasing, readout flips). The expectation of
 * executeNoisy(...).successRate converges to this value.
 *
 * @pre The circuit's active-qubit count is <= DensityMatrix::maxQubits().
 */
double exactSuccessProbability(const Circuit &hw, const Device &dev,
                               const Calibration &calib);

} // namespace triq

#endif // TRIQ_SIM_DENSITY_HH
