/**
 * @file
 * Gate fusion: a pre-simulation pass that rewrites a circuit into a
 * shorter sequence of fused operators so each trajectory replay makes
 * fewer passes over the state vector.
 *
 * Three rewrites, all semantics-preserving (amplitudes agree with the
 * gate-by-gate path to ~1e-15 per gate; locked at <= 1e-12 by
 * tests/test_fusion.cc):
 *  - runs of adjacent diagonal gates (Z/S/Sdg/T/Tdg/Rz/U1/CZ/Cphase)
 *    collapse into one diagonal table applied in a single pass;
 *  - runs of adjacent single-qubit gates on the same qubit merge into
 *    one 2x2 unitary;
 *  - small contiguous regions whose gates touch at most 2 (or 3)
 *    qubits fuse into one dense unitary applied by the cache-blocked
 *    kernels in sim/statevector.hh, when a pass-count cost model says
 *    the fused form is cheaper.
 *
 * Fused operators remember the original gate range they cover, so the
 * executor can still start or stop evolution at *any* original gate
 * index (checkpoints resume mid-circuit; Pauli faults inject after a
 * specific gate): a boundary inside a fused operator falls back to the
 * original gates for just that operator.
 */

#ifndef TRIQ_SIM_FUSION_HH
#define TRIQ_SIM_FUSION_HH

#include <cstdint>
#include <vector>

#include "core/circuit.hh"
#include "sim/statevector.hh"

namespace triq
{

/** Tuning knobs for the fusion pass; defaults fit NISQ-size circuits. */
struct FusionOptions
{
    /** Largest dense fused region, in qubits (1..3). */
    int maxDenseQubits = 3;

    /** Largest diagonal-run support, in qubits (1..16). */
    int maxDiagonalQubits = 10;

    /**
     * Largest original-gate span one fused operator may cover. A range
     * boundary inside a fused operator (checkpoint resume, mid-circuit
     * Pauli injection) replays that operator's original gates, so
     * unbounded spans turn partial overlaps into long plain replays.
     */
    int maxGatesPerOp = 12;

    /**
     * When > 0, fused operators never span gate indices that are
     * multiples of this value. The executor sets it to its checkpoint
     * interval so replays resumed from a checkpoint always start on an
     * operator boundary instead of falling back to plain gates.
     */
    int alignBoundary = 0;

    /**
     * Cache-blocked tiling: runs of >= 2 consecutive fused operators
     * whose operands all sit below bit `tileQubits` are applied one
     * 2^tileQubits-amplitude tile at a time, so the tile stays hot in
     * L1/L2 across the whole run instead of streaming the full state
     * once per operator. Tiling is bit-exact: such operators are closed
     * on each tile, and the ranged kernels perform per-amplitude
     * arithmetic identical to the full-state passes.
     *
     * -1 picks the default (TRIQ_SIM_TILE, see defaultTileQubits());
     * 0 disables tiling; values > 0 are clamped to >= 6 so tile bounds
     * keep the fused kernels' group-space alignment (see
     * StateVector::applyFused1Range). Tiling only engages on registers
     * larger than one tile.
     */
    int tileQubits = -1;
};

/**
 * Tile size used when FusionOptions::tileQubits is -1: TRIQ_SIM_TILE
 * when set (0 disables), else 12 (a 64 KiB tile — half a typical L2 —
 * leaving room for the matrix data and the next tile's prefetch).
 */
int defaultTileQubits();

/** What the fusion pass did to one circuit. */
struct FusionStats
{
    int gates = 0;       //!< Original gate count (incl. Measure/Barrier).
    int ops = 0;         //!< Emitted fused-op count.
    int dense1 = 0;      //!< Fused 2x2 operators.
    int dense2 = 0;      //!< Fused 4x4 operators.
    int dense3 = 0;      //!< Fused 8x8 operators.
    int diagonal = 0;    //!< Collapsed diagonal runs.
    int passthrough = 0; //!< Ops that replay original gates unchanged.
    int fusedGates = 0;  //!< Gates absorbed into fused operators.
    int tileRuns = 0;    //!< Cache-blocked runs of consecutive ops.
    int tiledOps = 0;    //!< Fused ops covered by those runs.

    /** Modeled cost ratio fused/unfused (passes over the state). */
    double modeledCostRatio = 1.0;
};

/**
 * A circuit compiled for fast state-vector replay.
 *
 * Construction runs the fusion pass once; apply() then replays any
 * original-gate range [from, to) against a StateVector, using fused
 * operators wherever the range covers them completely and original
 * gates at partial boundaries. Measure gates inside the range are
 * skipped (the executor samples measurements separately), matching the
 * unfused replay loop.
 */
class FusedProgram
{
  public:
    FusedProgram() = default;

    /** Fuse `c` (kept by copy, so the program owns its fallback path). */
    explicit FusedProgram(const Circuit &c, const FusionOptions &opt = {});

    /** Apply original-gate range [from_gate, to_gate) to `sv`. */
    void apply(StateVector &sv, int from_gate, int to_gate) const;

    /** Apply the whole circuit (Measure gates skipped). */
    void applyAll(StateVector &sv) const;

    /** Original gate count (range bound for apply()). */
    int numGates() const { return circuit_.numGates(); }

    const FusionStats &stats() const { return stats_; }

    /** The original circuit the program was built from. */
    const Circuit &circuit() const { return circuit_; }

  private:
    struct Op
    {
        enum class Kind : uint8_t
        {
            Pass,   //!< Replay original gates in [lo, hi).
            Dense1, //!< 2x2 matrix on q[0].
            Dense2, //!< 4x4 matrix on q[0] (bit 0), q[1] (bit 1).
            Dense3, //!< 8x8 matrix on q[0..2].
            Diag,   //!< Diagonal table over q[0..nq).
        };
        Kind kind = Kind::Pass;
        int lo = 0; //!< First original gate covered.
        int hi = 0; //!< One past the last original gate covered.
        int nq = 0;
        int q[3] = {0, 0, 0};   //!< Dense operands, ascending (bit i = q[i]).
        std::vector<int> qs;    //!< Diag support, ascending (bit k = qs[k]).
        std::vector<Cplx> data; //!< Row-major matrix or diagonal table.
    };

    /**
     * Precompiled per-gate fallback: how applyPlainRange applies one
     * original gate. Dense single-qubit gates (and XX) cache their
     * unitary at fusion time so partial-range replays hit the fused
     * kernels instead of re-deriving a heap-allocated Matrix per gate.
     */
    struct PlainRec
    {
        enum class Kind : uint8_t
        {
            Skip,   //!< Measure/Barrier/I: nothing to apply.
            Native, //!< StateVector::applyGate fast path (CNOT, CZ, ...).
            Mat1,   //!< applyFused1 with the cached 2x2 at matPool_[mat].
            Mat2,   //!< applyFused2 with the cached 4x4 at matPool_[mat].
        };
        Kind kind = Kind::Native;
        int q0 = 0;
        int q1 = 0;
        int mat = -1; //!< Offset into matPool_ (Mat1/Mat2 only).
    };

    /**
     * A maximal run of >= 2 consecutive ops (indices [opLo, opHi) into
     * ops_) whose operands all sit below tileBits_; applyTileRun
     * replays the whole run per 2^tileBits_-amplitude tile.
     */
    struct TileRun
    {
        int opLo = 0;
        int opHi = 0;
    };

    void applyOp(StateVector &sv, const Op &op) const;
    void applyOpRange(StateVector &sv, const Op &op, uint64_t lo,
                      uint64_t hi) const;
    void applyTileRun(StateVector &sv, const TileRun &run) const;
    void applyPlainRange(StateVector &sv, int lo, int hi) const;

    Circuit circuit_;
    std::vector<Op> ops_;
    std::vector<int> opOfGate_; //!< gate index -> index into ops_.
    std::vector<PlainRec> plain_; //!< One record per original gate.
    std::vector<Cplx> matPool_;   //!< Cached fallback matrices, row-major.
    std::vector<TileRun> tileRuns_;
    std::vector<int> runOfOp_; //!< op index -> tileRuns_ index or -1.
    int tileBits_ = 0;         //!< log2 tile amplitudes; 0 = no tiling.
    FusionStats stats_;
};

} // namespace triq

#endif // TRIQ_SIM_FUSION_HH
