/**
 * @file
 * Stochastic-Pauli noise model for executing compiled circuits.
 *
 * Every physical operation of a translated circuit becomes an "error
 * site": with the calibrated error probability, a uniformly random
 * Pauli is injected after the gate (X/Y/Z for 1Q, one of the fifteen
 * non-identity two-qubit Paulis for 2Q). Readout errors flip measured
 * bits. Idle windows from the ASAP schedule become dephasing (Z) sites
 * with probability 1 - exp(-t_idle / T2), which is how the machines'
 * coherence times (Fig. 1) enter the simulation.
 */

#ifndef TRIQ_SIM_NOISE_HH
#define TRIQ_SIM_NOISE_HH

#include <vector>

#include "core/circuit.hh"
#include "device/calibration.hh"
#include "device/topology.hh"

namespace triq
{

/** One potential fault location in a circuit. */
struct ErrorSite
{
    /** Gate index after which the fault (if sampled) is injected. */
    int gateIdx;

    /** Affected qubits (q1 = -1 for single-qubit sites). */
    int q0;
    int q1;

    /** Fault probability. */
    double prob;

    /** True for idle-dephasing sites (always inject Z). */
    bool idle;
};

/**
 * Enumerate the error sites of a translated hardware circuit:
 * per-gate fault sites (using gateErrorProb) plus idle-dephasing sites
 * from the schedule's gaps.
 */
std::vector<ErrorSite> collectErrorSites(const Circuit &hw,
                                         const Topology &topo,
                                         const Calibration &calib);

/** Probability that *no* site fires: product of (1 - prob). */
double noErrorProbability(const std::vector<ErrorSite> &sites);

} // namespace triq

#endif // TRIQ_SIM_NOISE_HH
