/**
 * @file
 * Internal sharding helper for the intra-state parallel kernels
 * (statevector.cc, fused_kernels.cc, fusion.cc). Not part of the
 * public simulator API.
 *
 * A kernel pass is one homogeneous loop over an index space (raw
 * amplitudes, or the flattened group space of a fused kernel). shard()
 * plans it through common/sched.hh and either runs the body once over
 * the whole range (serial — the pool is never touched) or splits the
 * range into one contiguous, alignment-preserving slice per worker on
 * the shared process pool.
 *
 * Determinism: slices are disjoint index ranges and the body performs
 * identical per-index arithmetic wherever its range boundaries fall,
 * so results are bit-identical for every thread count and every shard
 * boundary. `align` keeps vector units (2 interleaved complex lanes)
 * intact across boundaries; 8 also keeps boundary cache-line sharing
 * negligible.
 *
 * Threading discipline: shard() may only run threaded on the control
 * thread (ThreadPool jobs must not submit to their own pool). The
 * per-StateVector kernel-thread setting defaults to 1 (serial)
 * precisely so states living inside pool workers can never recurse
 * into the pool; the executor enables threading only on states it
 * drives from the control thread.
 */

#ifndef TRIQ_SIM_KERNEL_DISPATCH_HH
#define TRIQ_SIM_KERNEL_DISPATCH_HH

#include <algorithm>
#include <cstdint>

#include "common/sched.hh"
#include "common/thread_pool.hh"

namespace triq
{
namespace kernels
{

/**
 * Run `body(lo, hi)` over [0, total) per the kernel plan for
 * `setting` (1 = serial, 0 = adaptive, N > 1 = forced; see
 * planKernel). Range boundaries are multiples of `align` (a power of
 * two dividing `total`, except possibly in the final slice, which
 * absorbs the remainder). `amp_ops` is the pass's modeled work in
 * amplitude updates.
 */
template <typename Body>
inline void
shard(int setting, uint64_t total, uint64_t align, double amp_ops,
      const Body &body)
{
    if (total == 0)
        return;
    if (setting == 1 || total < 2 * align) {
        body(0, total);
        return;
    }
    const SchedDecision d =
        planKernel(schedCalib(), amp_ops, setting, processPoolStarted());
    const uint64_t blocks = total / align;
    const int shards = static_cast<int>(
        std::min<uint64_t>(d.threaded ? d.tasks : 1, blocks));
    if (!d.threaded || shards <= 1) {
        body(0, total);
        return;
    }
    ThreadPool &pool = processPool(d.threads);
    parallelFor(pool, shards, [&](int s) {
        const uint64_t lo =
            align * (blocks * static_cast<uint64_t>(s) / shards);
        const uint64_t hi =
            s + 1 == shards
                ? total
                : align * (blocks * (static_cast<uint64_t>(s) + 1) /
                           shards);
        if (lo < hi)
            body(lo, hi);
    });
}

/**
 * Enumerate the maximal contiguous amplitude-index segments of the
 * flattened group range [t_lo, t_hi) of a fused kernel.
 *
 * Group index t is the basis index with the k operand bits deleted;
 * `strides` are the operand bit values in ascending order. Expanding t
 * back to the group's base amplitude index inserts a zero bit at each
 * stride position; consecutive t values below the lowest stride map to
 * consecutive amplitudes, so each callback fn(i, n) covers one
 * contiguous run [i, i + n) of group bases (n <= strides[0]).
 *
 * Segment lengths inherit the parity of the range bounds: when t_lo
 * and t_hi are even and strides[0] >= 2, every n is even, which is
 * what the two-amplitude AVX2 vector bodies require.
 */
template <typename Fn>
inline void
forSegments(uint64_t t_lo, uint64_t t_hi, const uint64_t *strides, int k,
            const Fn &fn)
{
    const uint64_t s0 = strides[0];
    uint64_t t = t_lo;
    while (t < t_hi) {
        uint64_t i = t;
        for (int j = 0; j < k; ++j)
            i = ((i & ~(strides[j] - 1)) << 1) | (i & (strides[j] - 1));
        const uint64_t n =
            std::min(s0 - (t & (s0 - 1)), t_hi - t);
        fn(i, n);
        t += n;
    }
}

} // namespace kernels
} // namespace triq

#endif // TRIQ_SIM_KERNEL_DISPATCH_HH
