/**
 * @file
 * Measurement-error mitigation: invert the per-qubit readout confusion
 * matrices to correct an observed outcome histogram.
 *
 * The paper's calibration feeds include per-qubit readout error rates;
 * the natural follow-on (adopted into mainstream toolchains shortly
 * after) is to use those same rates to undo readout bias
 * statistically. With independent symmetric flips the confusion matrix
 * factorizes per bit as [[1-e, e], [e, 1-e]], whose inverse is applied
 * axis by axis in O(k 2^k).
 */

#ifndef TRIQ_SIM_MITIGATION_HH
#define TRIQ_SIM_MITIGATION_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/circuit.hh"
#include "device/calibration.hh"

namespace triq
{

/**
 * Readout error of each measured qubit of a hardware circuit, in the
 * executor's key order (ascending measured hardware qubit).
 */
std::vector<double> measuredReadoutErrors(const Circuit &hw,
                                          const Calibration &calib);

/**
 * Correct an observed outcome histogram for readout error.
 *
 * @param histogram Observed counts (ExecutionResult::histogram).
 * @param ro_errs Per-bit flip probabilities in key order; every entry
 *        must be < 0.5 (a beyond-random readout cannot be inverted).
 * @return The corrected outcome distribution (size 2^k, clamped to
 *         non-negative and renormalized).
 */
std::vector<double>
mitigateReadoutHistogram(const std::unordered_map<uint64_t, int> &histogram,
                         const std::vector<double> &ro_errs);

/**
 * Convenience: the mitigated probability of `correct_outcome`.
 * Compare against raw successRate to quantify the recovery.
 */
double mitigatedSuccess(const std::unordered_map<uint64_t, int> &histogram,
                        const std::vector<double> &ro_errs,
                        uint64_t correct_outcome);

} // namespace triq

#endif // TRIQ_SIM_MITIGATION_HH
