/**
 * @file
 * Compilation verification: check that a compiled hardware circuit
 * computes the same measured-outcome distribution as the source
 * program, accounting for the router's qubit relocation. This is the
 * library form of the equivalence check the test suite applies to
 * every (benchmark, device, level) combination.
 */

#ifndef TRIQ_SIM_VERIFY_HH
#define TRIQ_SIM_VERIFY_HH

#include "core/compiler.hh"

namespace triq
{

/** Outcome of a verification run. */
struct VerificationResult
{
    /** True when the distributions agree within `tolerance`. */
    bool equivalent = false;

    /** Largest absolute probability difference over all outcomes. */
    double maxDeviation = 0.0;

    /** Total variation distance between the two distributions. */
    double totalVariation = 0.0;
};

/**
 * Compare the ideal measured-outcome distribution of `program` with
 * that of the compiled result, remapping outcome bits through the
 * final placement.
 *
 * @param program The source program (must measure at least one qubit).
 * @param compiled The compiler's output for that program.
 * @param tolerance Per-outcome probability tolerance.
 * @pre program's active qubit count small enough to simulate.
 */
VerificationResult verifyCompilation(const Circuit &program,
                                     const CompileResult &compiled,
                                     double tolerance = 1e-7);

} // namespace triq

#endif // TRIQ_SIM_VERIFY_HH
