#include "sim/fusion.hh"

#include <algorithm>
#include <cstdint>

#include "common/env.hh"
#include "common/logging.hh"
#include "core/unitary.hh"
#include "sim/kernel_dispatch.hh"

namespace triq
{

int
defaultTileQubits()
{
    return envInt("TRIQ_SIM_TILE", 12, 0);
}

namespace
{

/**
 * Modeled cost of replaying one gate on the fused path, where dense
 * single-qubit gates (and XX) go through cached matrices and the fused
 * kernels (see FusedProgram::PlainRec) and the rest use the applyGate
 * fast paths. Calibrated from measured per-pass wall clock on a 2^8
 * state (RelWithDebInfo baseline, TRIQ_NATIVE_KERNELS fused kernels);
 * only relative magnitudes matter — the fusion pass compares these sums
 * against the fused-kernel costs below to decide whether fusing wins.
 */
double
plainGateCost(const Gate &g)
{
    switch (g.kind) {
      case GateKind::I:
        return 0.02; // no-op in applyGate; loop overhead only
      case GateKind::Cz:
        return 0.26;
      case GateKind::Cphase:
        return 0.35;
      case GateKind::Cnot:
        return 0.33;
      case GateKind::Swap:
        return 0.40;
      case GateKind::Xx:
        return 0.33; // cached 4x4 through applyFused2
      default:
        return 0.15; // any 1Q gate: cached 2x2 through applyFused1
    }
}

/** Modeled cost of one fused dense kernel pass (applyFused1/2/3). */
double
fusedDenseCost(int nq)
{
    switch (nq) {
      case 1:
        return 0.15;
      case 2:
        return 0.33;
      default:
        return 0.66;
    }
}

/** Modeled cost of one applyDiagonal pass over an nq-qubit table. */
double
fusedDiagCost(int nq)
{
    return 0.25 + 0.04 * nq;
}

/** Gates whose unitary is diagonal in the computational basis. */
bool
isDiagGate(GateKind k)
{
    switch (k) {
      case GateKind::I:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::Rz:
      case GateKind::U1:
      case GateKind::Cz:
      case GateKind::Cphase:
        return true;
      default:
        return false;
    }
}

/** Sorted, deduplicated operand qubits of a gate. */
std::vector<int>
gateSupport(const Gate &g)
{
    std::vector<int> s;
    for (int i = 0; i < g.arity(); ++i)
        s.push_back(g.qubit(i));
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    return s;
}

/** Sorted union of two sorted qubit lists. */
std::vector<int>
supportUnion(const std::vector<int> &a, const std::vector<int> &b)
{
    std::vector<int> u;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(u));
    return u;
}

/** Index of q in the sorted list `support`. @pre q is present. */
int
supportIndex(const std::vector<int> &support, int q)
{
    auto it = std::lower_bound(support.begin(), support.end(), q);
    return static_cast<int>(it - support.begin());
}

/**
 * Embed an a-qubit matrix into an n-qubit space: local bit i of `m`
 * lands at bit pos[i] of the embedded index; bits outside pos act as
 * identity. Row-major both ways.
 */
Matrix
embedAt(const Matrix &m, const std::vector<int> &pos, int n)
{
    const uint64_t dim = 1ull << n;
    const int a = static_cast<int>(pos.size());
    const uint64_t sub = 1ull << a;
    uint64_t mask = 0;
    for (int p : pos)
        mask |= 1ull << p;
    Matrix out(static_cast<int>(dim), static_cast<int>(dim));
    for (uint64_t c = 0; c < dim; ++c) {
        const uint64_t rest = c & ~mask;
        uint64_t mc = 0;
        for (int i = 0; i < a; ++i)
            mc |= ((c >> pos[i]) & 1) << i;
        for (uint64_t mr = 0; mr < sub; ++mr) {
            uint64_t r = rest;
            for (int i = 0; i < a; ++i)
                r |= ((mr >> i) & 1) << pos[i];
            out(static_cast<int>(r), static_cast<int>(c)) =
                m(static_cast<int>(mr), static_cast<int>(mc));
        }
    }
    return out;
}

/** A gate's unitary expressed over sorted support (bit k = support[k]). */
Matrix
gateMatrixOnSupport(const Gate &g, const std::vector<int> &support)
{
    Matrix gm = gateMatrix(g);
    std::vector<int> pos(g.arity());
    for (int i = 0; i < g.arity(); ++i)
        pos[i] = supportIndex(support, g.qubit(i));
    return embedAt(gm, pos, static_cast<int>(support.size()));
}

/**
 * One unit of the fusion worklist: either a single original gate, a
 * fence (Measure/Barrier/composite), or a fused candidate carrying its
 * matrix/table over a sorted support.
 */
struct Item
{
    enum class Kind : uint8_t
    {
        Single, //!< One original gate, not (yet) fused.
        Fence,  //!< Unfusable gate; closes every run and region.
        Dense,  //!< Fused dense matrix over `support`.
        Diag,   //!< Fused diagonal table over `support`.
    };
    Kind kind = Kind::Single;
    int lo = 0;
    int hi = 0;
    std::vector<int> support;
    Matrix mat;             //!< Dense only.
    std::vector<Cplx> diag; //!< Diag only.
    double cost = 0.0;      //!< Modeled cost of emitting this item as-is.
    int gateCount = 0;      //!< Unitary gates absorbed.
};

/** True when the item has a unitary the region builder can multiply. */
bool
fusible(const Item &it)
{
    return it.kind != Item::Kind::Fence;
}

/**
 * Whether one fused operator may cover original gates [lo, hi): bounded
 * by the span cap, and never crossing an alignment boundary (checkpoint
 * interval) when one is set. See FusionOptions.
 */
bool
spanAllowed(int lo, int hi, int max_span, int align)
{
    if (hi - lo > max_span)
        return false;
    if (align > 0 && lo / align != (hi - 1) / align)
        return false;
    return true;
}

/** The item's unitary over `support` (superset of the item's support). */
Matrix
itemMatrixOn(const Item &it, const Circuit &c,
             const std::vector<int> &support)
{
    if (it.kind == Item::Kind::Single)
        return gateMatrixOnSupport(c.gate(it.lo), support);
    std::vector<int> pos(it.support.size());
    for (size_t k = 0; k < it.support.size(); ++k)
        pos[k] = supportIndex(support, it.support[k]);
    if (it.kind == Item::Kind::Dense)
        return embedAt(it.mat, pos, static_cast<int>(support.size()));
    // Diag: expand the table into a diagonal matrix first.
    const int a = static_cast<int>(it.support.size());
    Matrix d(1 << a, 1 << a);
    for (int i = 0; i < (1 << a); ++i)
        d(i, i) = it.diag[i];
    return embedAt(d, pos, static_cast<int>(support.size()));
}

/**
 * Collapse runs of adjacent diagonal gates into one Diag item when the
 * single table pass is modeled cheaper than replaying the run. Runs
 * split when their union support would exceed max_diag_qubits or the
 * span limits. Single-qubit-support runs are left alone: the same-qubit
 * merge pass turns those into a cheaper 2x2.
 */
std::vector<Item>
collapseDiagonalRuns(std::vector<Item> items, const Circuit &c,
                     int max_diag_qubits, int max_span, int align)
{
    std::vector<Item> out;
    size_t i = 0;
    while (i < items.size()) {
        const Item &head = items[i];
        if (head.kind != Item::Kind::Single ||
            !isDiagGate(c.gate(head.lo).kind)) {
            out.push_back(std::move(items[i]));
            ++i;
            continue;
        }
        std::vector<int> support = head.support;
        double plain_cost = head.cost;
        size_t j = i + 1;
        while (j < items.size() && items[j].kind == Item::Kind::Single &&
               isDiagGate(c.gate(items[j].lo).kind) &&
               spanAllowed(head.lo, items[j].hi, max_span, align)) {
            std::vector<int> u = supportUnion(support, items[j].support);
            if (static_cast<int>(u.size()) > max_diag_qubits)
                break;
            support = std::move(u);
            plain_cost += items[j].cost;
            ++j;
        }
        if (j - i < 2 || support.size() < 2 ||
            fusedDiagCost(static_cast<int>(support.size())) >=
                plain_cost) {
            out.push_back(std::move(items[i]));
            ++i;
            continue;
        }
        Item fused;
        fused.kind = Item::Kind::Diag;
        fused.lo = items[i].lo;
        fused.hi = items[j - 1].hi;
        fused.support = support;
        fused.gateCount = static_cast<int>(j - i);
        fused.cost = fusedDiagCost(static_cast<int>(support.size()));
        fused.diag.assign(1ull << support.size(), Cplx(1.0, 0.0));
        for (size_t k = i; k < j; ++k) {
            const Gate &g = c.gate(items[k].lo);
            if (g.kind == GateKind::I)
                continue;
            Matrix gm = gateMatrix(g);
            std::vector<int> pos(g.arity());
            for (int o = 0; o < g.arity(); ++o)
                pos[o] = supportIndex(support, g.qubit(o));
            for (uint64_t l = 0; l < fused.diag.size(); ++l) {
                uint64_t local = 0;
                for (int o = 0; o < g.arity(); ++o)
                    local |= ((l >> pos[o]) & 1) << o;
                fused.diag[l] *= gm(static_cast<int>(local),
                                    static_cast<int>(local));
            }
        }
        out.push_back(std::move(fused));
        i = j;
    }
    return out;
}

/**
 * Merge runs of >= 2 adjacent single-qubit gates on the same qubit into
 * one 2x2 Dense item (left-multiplied in program order).
 */
std::vector<Item>
mergeSameQubitRuns(std::vector<Item> items, const Circuit &c,
                   int max_span, int align)
{
    std::vector<Item> out;
    size_t i = 0;
    auto is1q = [&](const Item &it) {
        return it.kind == Item::Kind::Single && it.support.size() == 1 &&
               isOneQubitGate(c.gate(it.lo).kind);
    };
    while (i < items.size()) {
        if (!is1q(items[i])) {
            out.push_back(std::move(items[i]));
            ++i;
            continue;
        }
        const int q = items[i].support[0];
        size_t j = i + 1;
        while (j < items.size() && is1q(items[j]) &&
               items[j].support[0] == q &&
               spanAllowed(items[i].lo, items[j].hi, max_span, align))
            ++j;
        if (j - i < 2) {
            out.push_back(std::move(items[i]));
            ++i;
            continue;
        }
        Item fused;
        fused.kind = Item::Kind::Dense;
        fused.lo = items[i].lo;
        fused.hi = items[j - 1].hi;
        fused.support = {q};
        fused.gateCount = static_cast<int>(j - i);
        fused.cost = fusedDenseCost(1);
        fused.mat = Matrix::identity(2);
        for (size_t k = i; k < j; ++k)
            fused.mat = gateMatrix(c.gate(items[k].lo)) * fused.mat;
        out.push_back(std::move(fused));
        i = j;
    }
    return out;
}

/**
 * Greedy dense-region fusion: grow a contiguous region while its union
 * support stays within max_qubits, then fuse the whole region into one
 * DenseN item when the kernel's modeled cost beats replaying the items
 * it absorbs. Called with max_qubits = 2 and then 3, so profitable
 * 2-qubit blocks form first and become units for 3-qubit growth.
 */
std::vector<Item>
fuseDenseRegions(std::vector<Item> items, const Circuit &c, int max_qubits,
                 int max_span, int align)
{
    std::vector<Item> out;
    size_t i = 0;
    while (i < items.size()) {
        if (!fusible(items[i]) ||
            static_cast<int>(items[i].support.size()) > max_qubits) {
            out.push_back(std::move(items[i]));
            ++i;
            continue;
        }
        std::vector<int> support = items[i].support;
        double plain_cost = items[i].cost;
        int gate_count = items[i].gateCount;
        size_t j = i + 1;
        while (j < items.size() && fusible(items[j]) &&
               spanAllowed(items[i].lo, items[j].hi, max_span, align)) {
            std::vector<int> u = supportUnion(support, items[j].support);
            if (static_cast<int>(u.size()) > max_qubits)
                break;
            support = std::move(u);
            plain_cost += items[j].cost;
            gate_count += items[j].gateCount;
            ++j;
        }
        const double fused_cost =
            fusedDenseCost(static_cast<int>(support.size()));
        if (j - i < 2 || gate_count < 2 || fused_cost >= plain_cost) {
            out.push_back(std::move(items[i]));
            ++i;
            continue;
        }
        Item fused;
        fused.kind = Item::Kind::Dense;
        fused.lo = items[i].lo;
        fused.hi = items[j - 1].hi;
        fused.support = support;
        fused.gateCount = gate_count;
        fused.cost = fused_cost;
        fused.mat = Matrix::identity(1 << support.size());
        for (size_t k = i; k < j; ++k)
            fused.mat = itemMatrixOn(items[k], c, support) * fused.mat;
        out.push_back(std::move(fused));
        i = j;
    }
    return out;
}

} // namespace

FusedProgram::FusedProgram(const Circuit &c, const FusionOptions &opt)
    : circuit_(c)
{
    const int max_dense = std::clamp(opt.maxDenseQubits, 1, 3);
    const int max_diag = std::clamp(opt.maxDiagonalQubits, 1, 16);
    const int max_span = std::max(1, opt.maxGatesPerOp);
    const int align = std::max(0, opt.alignBoundary);

    // Precompile the per-gate fallback path: cache the 2x2 (or XX 4x4)
    // unitaries once so partial-range replays go through the fused
    // kernels instead of allocating a Matrix per gate per trajectory.
    plain_.resize(c.numGates());
    for (int gi = 0; gi < c.numGates(); ++gi) {
        const Gate &g = c.gate(gi);
        PlainRec &rec = plain_[gi];
        if (g.kind == GateKind::Measure || g.kind == GateKind::Barrier ||
            g.kind == GateKind::I) {
            rec.kind = PlainRec::Kind::Skip;
            continue;
        }
        const bool cache1 = isUnitaryGate(g.kind) && g.arity() == 1;
        const bool cache2 = g.kind == GateKind::Xx;
        if (!cache1 && !cache2) {
            rec.kind = PlainRec::Kind::Native;
            continue;
        }
        rec.kind = cache1 ? PlainRec::Kind::Mat1 : PlainRec::Kind::Mat2;
        rec.q0 = g.qubit(0);
        rec.q1 = cache2 ? g.qubit(1) : 0;
        rec.mat = static_cast<int>(matPool_.size());
        const Matrix gm = gateMatrix(g);
        for (int r = 0; r < gm.rows(); ++r)
            for (int col = 0; col < gm.cols(); ++col)
                matPool_.push_back(gm(r, col));
    }

    // Worklist of single-gate items; Measure/Barrier and any 3Q
    // composite that escaped decomposition are fences.
    std::vector<Item> items;
    items.reserve(c.numGates());
    for (int gi = 0; gi < c.numGates(); ++gi) {
        const Gate &g = c.gate(gi);
        Item it;
        it.lo = gi;
        it.hi = gi + 1;
        if (!isUnitaryGate(g.kind) || isCompositeGate(g.kind)) {
            it.kind = Item::Kind::Fence;
        } else {
            it.kind = Item::Kind::Single;
            it.support = gateSupport(g);
            it.cost = plainGateCost(g);
            it.gateCount = 1;
        }
        items.push_back(std::move(it));
    }

    items = collapseDiagonalRuns(std::move(items), circuit_, max_diag,
                                 max_span, align);
    items = mergeSameQubitRuns(std::move(items), circuit_, max_span,
                               align);
    for (int limit = 2; limit <= max_dense; ++limit)
        items = fuseDenseRegions(std::move(items), circuit_, limit,
                                 max_span, align);

    // Emit ops: fused items become kernels, everything else coalesces
    // into Pass ranges replayed gate by gate.
    double plain_total = 0.0;
    for (const Gate &g : c.gates())
        if (isUnitaryGate(g.kind))
            plain_total += plainGateCost(g);
    double fused_total = 0.0;

    auto flushPass = [&](int lo, int hi) {
        if (lo >= hi)
            return;
        Op op;
        op.kind = Op::Kind::Pass;
        op.lo = lo;
        op.hi = hi;
        for (int gi = lo; gi < hi; ++gi)
            if (isUnitaryGate(c.gate(gi).kind))
                fused_total += plainGateCost(c.gate(gi));
        ops_.push_back(std::move(op));
        ++stats_.passthrough;
    };

    int pass_lo = 0;
    for (const Item &it : items) {
        const bool fused_dense =
            it.kind == Item::Kind::Dense &&
            static_cast<int>(it.support.size()) <= 3;
        const bool fused_diag = it.kind == Item::Kind::Diag;
        if (!fused_dense && !fused_diag)
            continue;
        flushPass(pass_lo, it.lo);
        pass_lo = it.hi;
        Op op;
        op.lo = it.lo;
        op.hi = it.hi;
        op.nq = static_cast<int>(it.support.size());
        if (fused_diag) {
            op.kind = Op::Kind::Diag;
            op.qs = it.support;
            op.data = it.diag;
            fused_total += fusedDiagCost(op.nq);
            ++stats_.diagonal;
        } else {
            op.kind = op.nq == 1   ? Op::Kind::Dense1
                      : op.nq == 2 ? Op::Kind::Dense2
                                   : Op::Kind::Dense3;
            for (int k = 0; k < op.nq; ++k)
                op.q[k] = it.support[k];
            const int dim = 1 << op.nq;
            op.data.resize(static_cast<size_t>(dim) * dim);
            for (int r = 0; r < dim; ++r)
                for (int col = 0; col < dim; ++col)
                    op.data[static_cast<size_t>(r) * dim + col] =
                        it.mat(r, col);
            fused_total += fusedDenseCost(op.nq);
            if (op.nq == 1)
                ++stats_.dense1;
            else if (op.nq == 2)
                ++stats_.dense2;
            else
                ++stats_.dense3;
        }
        stats_.fusedGates += it.gateCount;
        ops_.push_back(std::move(op));
    }
    flushPass(pass_lo, c.numGates());

    // Ops are emitted in gate order and tile [0, numGates) exactly.
    std::sort(ops_.begin(), ops_.end(),
              [](const Op &a, const Op &b) { return a.lo < b.lo; });
    opOfGate_.assign(c.numGates(), 0);
    int expect = 0;
    for (size_t oi = 0; oi < ops_.size(); ++oi) {
        if (ops_[oi].lo != expect)
            panic("FusedProgram: op ranges do not tile the circuit");
        for (int gi = ops_[oi].lo; gi < ops_[oi].hi; ++gi)
            opOfGate_[gi] = static_cast<int>(oi);
        expect = ops_[oi].hi;
    }
    if (expect != c.numGates())
        panic("FusedProgram: op ranges do not cover the circuit");

    stats_.gates = c.numGates();
    stats_.ops = static_cast<int>(ops_.size());
    stats_.modeledCostRatio =
        plain_total > 0.0 ? fused_total / plain_total : 1.0;

    // Cache-blocked tiling: find maximal runs of >= 2 consecutive ops
    // whose operands all sit below the tile boundary. Such runs are
    // closed on every 2^tile_bits-amplitude tile, so the run can be
    // replayed tile by tile while the tile is hot in cache — bit-exact
    // by construction (see FusionOptions::tileQubits).
    int tile_bits =
        opt.tileQubits < 0 ? defaultTileQubits() : opt.tileQubits;
    if (tile_bits > 0)
        tile_bits = std::clamp(tile_bits, 6, StateVector::maxQubits());
    if (tile_bits > 0 && c.numQubits() > tile_bits) {
        auto tileable = [&](const Op &op) {
            switch (op.kind) {
              case Op::Kind::Pass:
                return false; // replays applyGate, full-state only
              case Op::Kind::Diag:
                return op.qs.back() < tile_bits;
              default:
                return op.q[op.nq - 1] < tile_bits;
            }
        };
        runOfOp_.assign(ops_.size(), -1);
        size_t oi = 0;
        while (oi < ops_.size()) {
            if (!tileable(ops_[oi])) {
                ++oi;
                continue;
            }
            size_t oj = oi + 1;
            while (oj < ops_.size() && tileable(ops_[oj]))
                ++oj;
            if (oj - oi >= 2) {
                for (size_t k = oi; k < oj; ++k)
                    runOfOp_[k] = static_cast<int>(tileRuns_.size());
                tileRuns_.push_back({static_cast<int>(oi),
                                     static_cast<int>(oj)});
                ++stats_.tileRuns;
                stats_.tiledOps += static_cast<int>(oj - oi);
            }
            oi = oj;
        }
        if (tileRuns_.empty())
            runOfOp_.clear();
        else
            tileBits_ = tile_bits;
    }
}

void
FusedProgram::applyPlainRange(StateVector &sv, int lo, int hi) const
{
    for (int gi = lo; gi < hi; ++gi) {
        const PlainRec &rec = plain_[gi];
        switch (rec.kind) {
          case PlainRec::Kind::Skip:
            break;
          case PlainRec::Kind::Mat1:
            sv.applyFused1(matPool_.data() + rec.mat, rec.q0);
            break;
          case PlainRec::Kind::Mat2:
            sv.applyFused2(matPool_.data() + rec.mat, rec.q0, rec.q1);
            break;
          case PlainRec::Kind::Native:
            sv.applyGate(circuit_.gate(gi));
            break;
        }
    }
}

void
FusedProgram::applyOp(StateVector &sv, const Op &op) const
{
    switch (op.kind) {
      case Op::Kind::Pass:
        applyPlainRange(sv, op.lo, op.hi);
        break;
      case Op::Kind::Dense1:
        sv.applyFused1(op.data.data(), op.q[0]);
        break;
      case Op::Kind::Dense2:
        sv.applyFused2(op.data.data(), op.q[0], op.q[1]);
        break;
      case Op::Kind::Dense3:
        sv.applyFused3(op.data.data(), op.q[0], op.q[1], op.q[2]);
        break;
      case Op::Kind::Diag:
        sv.applyDiagonal(op.data.data(), op.qs.data(), op.nq);
        break;
    }
}

void
FusedProgram::applyOpRange(StateVector &sv, const Op &op, uint64_t lo,
                           uint64_t hi) const
{
    switch (op.kind) {
      case Op::Kind::Dense1:
        sv.applyFused1Range(op.data.data(), op.q[0], lo, hi);
        break;
      case Op::Kind::Dense2:
        sv.applyFused2Range(op.data.data(), op.q[0], op.q[1], lo, hi);
        break;
      case Op::Kind::Dense3:
        sv.applyFused3Range(op.data.data(), op.q[0], op.q[1], op.q[2],
                            lo, hi);
        break;
      case Op::Kind::Diag:
        sv.applyDiagonalRange(op.data.data(), op.qs.data(), op.nq, lo,
                              hi);
        break;
      case Op::Kind::Pass:
        panic("FusedProgram::applyOpRange: Pass op in a tile run");
    }
}

void
FusedProgram::applyTileRun(StateVector &sv, const TileRun &run) const
{
    const uint64_t tile = uint64_t{1} << tileBits_;
    // Model the run's total work for the kernel-threading plan; tiles
    // are the shard grain, so each worker replays whole tiles and the
    // per-tile op order is preserved everywhere.
    double amp_ops = 0.0;
    for (int oi = run.opLo; oi < run.opHi; ++oi) {
        switch (ops_[oi].kind) {
          case Op::Kind::Dense1:
            amp_ops += static_cast<double>(sv.dim());
            break;
          case Op::Kind::Dense2:
            amp_ops += 2.0 * sv.dim();
            break;
          case Op::Kind::Dense3:
            amp_ops += 4.0 * sv.dim();
            break;
          default:
            amp_ops += 0.75 * sv.dim();
            break;
        }
    }
    kernels::shard(sv.kernelThreadSetting(), sv.dim(), tile, amp_ops,
                   [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t t0 = lo; t0 < hi; t0 += tile)
                           for (int oi = run.opLo; oi < run.opHi; ++oi)
                               applyOpRange(sv, ops_[oi], t0, t0 + tile);
                   });
}

void
FusedProgram::apply(StateVector &sv, int from_gate, int to_gate) const
{
    from_gate = std::max(from_gate, 0);
    to_gate = std::min(to_gate, numGates());
    int gi = from_gate;
    while (gi < to_gate) {
        const int oi = opOfGate_[gi];
        const Op &op = ops_[oi];
        if (gi == op.lo && op.hi <= to_gate) {
            // Replay a whole tile run cache-blocked when the range
            // covers it from its first op; tiling only engages on
            // states with more than tileBits_ qubits.
            const int r = runOfOp_.empty() ? -1 : runOfOp_[oi];
            if (r >= 0 && tileRuns_[r].opLo == oi &&
                ops_[tileRuns_[r].opHi - 1].hi <= to_gate &&
                sv.dim() > (uint64_t{1} << tileBits_)) {
                applyTileRun(sv, tileRuns_[r]);
                gi = ops_[tileRuns_[r].opHi - 1].hi;
                continue;
            }
            applyOp(sv, op);
            gi = op.hi;
        } else {
            // Range boundary lands inside this op: replay its original
            // gates for just the overlapping part.
            const int stop = std::min(op.hi, to_gate);
            applyPlainRange(sv, gi, stop);
            gi = stop;
        }
    }
}

void
FusedProgram::applyAll(StateVector &sv) const
{
    apply(sv, 0, numGates());
}

} // namespace triq
