#include "sim/noise.hh"

#include <algorithm>
#include <cmath>

#include "core/esp.hh"
#include "core/schedule.hh"

namespace triq
{

namespace
{

/** True when two 2Q gates are close enough to crosstalk: they share no
 * qubit (then they could not overlap anyway) but some endpoint of one
 * neighbors an endpoint of the other. */
bool
spatiallyAdjacent(const Topology &topo, const Gate &a, const Gate &b)
{
    for (int i = 0; i < a.arity(); ++i)
        for (int j = 0; j < b.arity(); ++j)
            if (topo.adjacent(a.qubit(i), b.qubit(j)))
                return true;
    return false;
}

} // namespace

std::vector<ErrorSite>
collectErrorSites(const Circuit &hw, const Topology &topo,
                  const Calibration &calib)
{
    std::vector<ErrorSite> sites;
    std::vector<int> twoq_sites; // Indices into `sites` for 2Q gates.
    for (int i = 0; i < hw.numGates(); ++i) {
        const Gate &g = hw.gate(i);
        if (g.kind == GateKind::Measure)
            continue; // Readout error is applied to the classical bits.
        double p = gateErrorProb(g, topo, calib);
        if (p <= 0.0)
            continue;
        int q1 = g.arity() >= 2 ? g.qubit(1) : -1;
        if (q1 != -1)
            twoq_sites.push_back(static_cast<int>(sites.size()));
        sites.push_back({i, g.qubit(0), q1, p, false});
    }
    ScheduleInfo sched = scheduleCircuit(hw, calib.durations);

    // Crosstalk extension: simultaneous 2Q gates on adjacent edges get
    // their error probability scaled by (1 + crosstalkFactor).
    if (calib.crosstalkFactor > 0.0) {
        for (size_t a = 0; a < twoq_sites.size(); ++a) {
            for (size_t b = a + 1; b < twoq_sites.size(); ++b) {
                ErrorSite &sa = sites[static_cast<size_t>(twoq_sites[a])];
                ErrorSite &sb = sites[static_cast<size_t>(twoq_sites[b])];
                const Gate &ga = hw.gate(sa.gateIdx);
                const Gate &gb = hw.gate(sb.gateIdx);
                double a0 = sched.startUs[static_cast<size_t>(sa.gateIdx)];
                double a1 = a0 + gateDurationUs(ga, calib.durations);
                double b0 = sched.startUs[static_cast<size_t>(sb.gateIdx)];
                double b1 = b0 + gateDurationUs(gb, calib.durations);
                bool overlap = a0 < b1 - 1e-12 && b0 < a1 - 1e-12;
                if (!overlap || !spatiallyAdjacent(topo, ga, gb))
                    continue;
                double f = 1.0 + calib.crosstalkFactor;
                sa.prob = std::min(1.0, sa.prob * f);
                sb.prob = std::min(1.0, sb.prob * f);
            }
        }
    }
    for (const auto &gap : sched.gaps) {
        double t2 = calib.t2Us[static_cast<size_t>(gap.qubit)];
        if (t2 <= 0.0)
            continue;
        double p = 1.0 - std::exp(-gap.us / t2);
        if (p > 1e-12)
            sites.push_back({gap.afterGate, gap.qubit, -1, p, true});
    }
    return sites;
}

double
noErrorProbability(const std::vector<ErrorSite> &sites)
{
    double p = 1.0;
    for (const auto &s : sites)
        p *= 1.0 - s.prob;
    return p;
}

} // namespace triq
