/**
 * @file
 * Active-qubit compaction: executing a 16-qubit device circuit that
 * only touches 6 qubits should simulate 6 qubits. Shared by the
 * trajectory executor and the density-matrix reference.
 */

#ifndef TRIQ_SIM_COMPACT_HH
#define TRIQ_SIM_COMPACT_HH

#include <vector>

#include "core/circuit.hh"

namespace triq
{

/** A circuit relabeled onto its active qubits. */
struct CompactCircuit
{
    Circuit circuit;

    /** hwToCompact[h] = compact index of hardware qubit h, or -1. */
    std::vector<int> hwToCompact;

    /** compactToHw[i] = hardware qubit behind compact index i. */
    std::vector<int> compactToHw;
};

/**
 * Relabel `hw` onto its active qubits (ascending hardware order).
 * @throws FatalError when the circuit touches no qubits.
 */
CompactCircuit compactCircuit(const Circuit &hw);

} // namespace triq

#endif // TRIQ_SIM_COMPACT_HH
