/**
 * @file
 * The noisy executor: the repo's substitute for launching a compiled
 * program on one of the paper's seven machines (Sec. 5, "Real-System
 * QC Experiments"). Runs many trials of a translated hardware circuit
 * under the stochastic-Pauli noise model and reports the success rate —
 * the fraction of trials returning the benchmark's correct answer.
 *
 * Performance architecture (see DESIGN.md, "Simulator performance
 * architecture"):
 *  - the circuit is compacted onto its active qubits and trials in
 *    which no error site fires reuse the cached ideal state;
 *  - trials are sharded into fixed-size chunks, each owning the RNG
 *    stream Rng::stream(seed, chunk_index); chunks run on the shared
 *    process pool and merge in chunk order, so results are
 *    bit-identical for any thread count (TRIQ_SIM_THREADS; 0 = let the
 *    common/sched.hh cost model decide serial vs. threaded and batch
 *    several chunks per pool task);
 *  - faulty trajectories replay from the nearest ideal-prefix
 *    checkpoint before their first fired error site instead of from
 *    |0...0>;
 *  - gate fusion (sim/fusion.hh, TRIQ_SIM_FUSION, default on) rewrites
 *    the compact circuit into fused kernels so each replay makes fewer
 *    passes over the state;
 *  - fault-pattern deduplication (TRIQ_SIM_DEDUP, default on)
 *    pre-samples every trial's fault pattern, simulates each distinct
 *    pattern once and draws all of its trials' measurement samples
 *    from the shared final state. Dedup consumes the per-trial RNG
 *    draws in exactly the per-trial engine's order, so its histograms
 *    are bit-identical to the dedup-off path.
 */

#ifndef TRIQ_SIM_EXECUTOR_HH
#define TRIQ_SIM_EXECUTOR_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sched.hh"
#include "core/circuit.hh"
#include "device/device.hh"

namespace triq
{

/** Outcome of a noisy execution campaign. */
struct ExecutionResult
{
    /** Fraction of trials that produced the correct answer. */
    double successRate = 0.0;

    /** Correct answer over the measured qubits (ascending order). */
    uint64_t correctOutcome = 0;

    /** Trials run. */
    int trials = 0;

    /** Analytic ESP prediction for cross-checking. */
    double esp = 0.0;

    /** Probability that a trial contains no fault at all. */
    double noErrorProb = 0.0;

    /**
     * Distinct state-vector trajectories simulated. With fault-pattern
     * deduplication on (the default) this is the number of *distinct
     * non-empty fault patterns*; with it off, the number of faulty
     * trials (every faulty trial replays individually).
     */
    int simulatedTrajectories = 0;

    /**
     * True when the correct answer dominated the observed output
     * distribution. The paper plots runs where it did not as failures
     * (zero-height bars).
     */
    bool correctIsModal = false;

    /**
     * Observed outcome counts over the measured qubits (ascending
     * hardware order defines key bits). Lets variational workloads
     * (QAOA, VQE-style) evaluate expectation values instead of a
     * single-answer success rate. Unordered for hot-loop speed; use
     * sortedHistogram() wherever counts are printed or summed in a
     * reproducible order.
     */
    std::unordered_map<uint64_t, int> histogram;

    /**
     * The scheduler's plan for the dominant simulation phase (the
     * trajectory fan-out): mode, thread count, items per task, and
     * predicted vs. actual wall clock. Purely observational — results
     * are bit-identical whatever the scheduler chose.
     */
    SchedDecision sched;

    /** Histogram entries sorted by ascending outcome key. */
    std::vector<std::pair<uint64_t, int>> sortedHistogram() const;
};

/** Tuning knobs for executeNoisy; the defaults match the env knobs. */
struct ExecOptions
{
    /**
     * Worker threads for trajectory chunks. > 0 forces that many
     * workers (1 = true serial path, no pool is constructed); < 0
     * requests adaptive mode (the common/sched.hh cost model decides
     * serial vs. threaded per phase and batches pool tasks to amortize
     * dispatch); 0 reads TRIQ_SIM_THREADS, where 0 likewise means
     * adaptive and unset defaults to 1 (serial). Results are
     * bit-identical for every value — threads only change wall-clock
     * time.
     */
    int threads = 0;

    /**
     * Ideal-prefix checkpoint spacing in gates. 0 picks an automatic
     * value (bounded snapshot memory); negative disables checkpointing
     * (every faulty trajectory replays from |0...0>). Results are
     * bit-identical for every value.
     */
    int checkpointInterval = 0;

    /**
     * Trials per RNG chunk (default 64). Part of the sampling contract:
     * changing it changes which random stream each trial draws from, so
     * results are only comparable at equal chunk size.
     */
    int chunkSize = 0;

    /**
     * Gate fusion for trajectory replays: > 0 on, < 0 off, 0 reads
     * TRIQ_SIM_FUSION (default on). Fusion keeps amplitudes equal to
     * the gate-by-gate path to ~1e-15 per gate (it reassociates
     * floating-point products), so histograms match the unfused path
     * for all practical seeds but are not guaranteed bit-identical.
     */
    int fusion = 0;

    /**
     * Fault-pattern deduplication: > 0 on, < 0 off, 0 reads
     * TRIQ_SIM_DEDUP (default on). Bit-identical to the per-trial
     * engine for any thread count: it consumes the RNG draws in the
     * same per-trial order and samples measurements by the same
     * cumulative scan.
     */
    int dedup = 0;

    /**
     * Intra-state kernel threading: how each gate kernel shards its
     * amplitude loops (see StateVector::setKernelThreads). > 0 forces
     * that many workers (1 = true serial kernels); < 0 requests
     * adaptive mode (the cost model decides per pass, so small
     * registers stay serial); 0 reads TRIQ_KERNEL_THREADS, where 0
     * likewise means adaptive and unset defaults to 1.
     *
     * Kernel threading and the trajectory fan-out share the process
     * pool, so they never stack: phases whose trajectory plan is
     * threaded run their kernels serially, and phases that run
     * trajectories serially (including the governor's low-memory
     * degraded plan) shard the kernels instead. Either way the state
     * footprint is unchanged and results are bit-identical.
     */
    int kernelThreads = 0;
};

/**
 * Execute a translated hardware circuit under noise.
 *
 * @param hw Translated circuit over hardware qubits (must measure at
 *           least one qubit; all measurements must be terminal).
 * @param dev The device it was compiled for (topology + durations).
 * @param calib Calibration snapshot to draw error rates from — use the
 *              same "day" the compiler saw for a fair experiment, or a
 *              different one to study staleness.
 * @param trials Number of repetitions (the paper uses 8192 on
 *               superconducting machines, 5000 on UMDTI).
 * @param seed RNG seed; fixed seeds make experiments reproducible.
 * @param opts Performance knobs (thread count, checkpoint spacing).
 *
 * @note Circuits without a dominant ideal outcome (variational
 *       workloads like QAOA) trigger a one-line advisory per call;
 *       use the histogram field for their figure of merit and
 *       setQuiet(true) to silence the advisory.
 */
ExecutionResult executeNoisy(const Circuit &hw, const Device &dev,
                             const Calibration &calib, int trials,
                             uint64_t seed = 12345,
                             const ExecOptions &opts = {});

/**
 * Default trial count for experiment harnesses: reads the TRIQ_TRIALS
 * environment variable, falling back to `fallback`.
 */
int defaultTrials(int fallback = 1000);

/**
 * Default simulation thread count: reads the TRIQ_SIM_THREADS
 * environment variable, falling back to `fallback` (serial).
 * TRIQ_SIM_THREADS=0 returns 0, meaning "adaptive": the cost model in
 * common/sched.hh picks serial or threaded per job.
 */
int defaultSimThreads(int fallback = 1);

/**
 * Default intra-state kernel thread count: reads the
 * TRIQ_KERNEL_THREADS environment variable, falling back to `fallback`
 * (1 = serial kernels). TRIQ_KERNEL_THREADS=0 returns 0, meaning
 * "adaptive": the common/sched.hh cost model picks serial or threaded
 * per kernel pass.
 */
int defaultKernelThreads(int fallback = 1);

/**
 * Default gate-fusion setting: reads the TRIQ_SIM_FUSION environment
 * variable (0 disables), falling back to `fallback` (on).
 */
bool defaultSimFusion(bool fallback = true);

/**
 * Default fault-pattern-dedup setting: reads the TRIQ_SIM_DEDUP
 * environment variable (0 disables), falling back to `fallback` (on).
 */
bool defaultSimDedup(bool fallback = true);

/**
 * Re-order an outcome key from the executor's hardware-measured-qubit
 * order into *program*-qubit order.
 *
 * The executor keys outcomes by ascending measured hardware qubit. To
 * compare against program semantics (e.g. BV's hidden string), bit k of
 * the program outcome must be read from wherever the router left
 * program qubit `prog_measured[k]` — its entry in `final_map`.
 *
 * @param key Outcome from ExecutionResult (hardware order).
 * @param hw The compiled circuit the outcome came from.
 * @param final_map CompileResult::finalMap (program -> hardware).
 * @param prog_measured Measured qubits of the *source* program.
 */
uint64_t outcomeForProgram(uint64_t key, const Circuit &hw,
                           const std::vector<HwQubit> &final_map,
                           const std::vector<ProgQubit> &prog_measured);

} // namespace triq

#endif // TRIQ_SIM_EXECUTOR_HH
