/**
 * @file
 * The simulator's memory cost model: how many bytes a noisy-simulation
 * run will commit, as a pure function of qubit count and worker fan-out.
 * executeNoisy reserves exactly these predictions against the process
 * ResourceGovernor before allocating, and triqd admission (via
 * service/cost_model.hh) checks the same formulas — one model, so the
 * layers cannot disagree about what fits.
 *
 * Intra-state kernel threading (TRIQ_KERNEL_THREADS) is deliberately
 * absent from every formula: kernel workers shard disjoint slices of
 * one existing state, adding no state copies, so only the *trajectory*
 * fan-out multiplies memory.
 */

#ifndef TRIQ_SIM_SIM_COST_HH
#define TRIQ_SIM_SIM_COST_HH

#include <cstdint>

namespace triq
{

/**
 * Bytes of one state vector over `qubits` qubits (2^n amplitudes x
 * 16 B). Saturates at UINT64_MAX — a 72-qubit state is 2^76 bytes,
 * and a saturated prediction still compares correctly against any
 * real budget.
 */
uint64_t stateVectorBytes(int qubits);

/** Bytes of one density matrix over `qubits` qubits (4^n x 16 B). */
uint64_t densityMatrixBytes(int qubits);

/**
 * Predicted peak committed bytes for executeNoisy over a compact
 * circuit of `active_qubits` qubits fanned out across `workers`
 * concurrent trial chunks: the cached ideal state, one trajectory
 * state per worker, a dedup/LCP snapshot allowance per worker, and
 * the executor's bounded checkpoint budget (charged only when the
 * executor would actually take checkpoints).
 */
uint64_t predictSimulationBytes(int active_qubits, int workers);

/**
 * Predicted bytes of the degraded low-memory plan: serial
 * trajectories, no checkpoints, no dedup — the ideal state plus a
 * single trajectory state (~2 x stateVectorBytes). executeNoisy falls
 * back to this plan automatically when the full plan does not fit the
 * budget. Kernel threading stays available in this plan at the same
 * 2-state footprint (kernel workers add no state copies), so degraded
 * runs on big registers keep their intra-state parallelism.
 */
uint64_t predictLowMemSimulationBytes(int active_qubits);

} // namespace triq

#endif // TRIQ_SIM_SIM_COST_HH
