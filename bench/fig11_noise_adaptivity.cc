/**
 * @file
 * Fig. 11 reproduction: importance of noise-adaptivity.
 * (a,b) IBMQ14: Qiskit-model vs TriQ-1QOptC vs TriQ-1QOptCN — 2Q gate
 *       counts and success rates (paper: up to 28x over Qiskit, geomean
 *       3.0x; up to 2.8x over 1QOptC, geomean 1.4x).
 * (c,d) Rigetti Agave / Aspen1: Quil-model vs TriQ-1QOptCN success
 *       rates (paper: up to 2.3x, geomean 1.45x).
 * (e,f) UMDTI: Toffoli / Fredkin chains of increasing length,
 *       TriQ-1QOptC vs TriQ-1QOptCN (paper: up to 1.47x / 1.35x,
 *       gains grow with program length).
 */

#include <iostream>

#include "baseline/vendor_compilers.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

void
ibmPanel(int day, int trials)
{
    Device dev = bench::deviceByName("IBMQ14");
    Table counts("Fig. 11(a): 2Q gate count on IBMQ14");
    counts.setHeader(
        {"benchmark", "Qiskit", "TriQ-1QOptC", "TriQ-1QOptCN"});
    Table succ("Fig. 11(b): success rate on IBMQ14 (" +
               std::to_string(trials) + " trials)");
    succ.setHeader({"benchmark", "Qiskit", "TriQ-1QOptC", "TriQ-1QOptCN",
                    "CN/Qiskit", "CN/C"});
    bench::Ratios vs_qiskit, vs_c;
    bench::forEachStudyBenchmark(
        dev, [&](const std::string &name, const Circuit &program) {
            auto qk = compileQiskitLike(program, dev);
            auto qk_ex = bench::runCompiled(qk, dev, day, trials);
            auto c = bench::runTriq(program, dev, OptLevel::OneQOptC, day,
                                    trials);
            auto cn = bench::runTriq(program, dev, OptLevel::OneQOptCN,
                                     day, trials);
            counts.addRow({name, fmtI(qk.stats.twoQ),
                           fmtI(c.compiled.stats.twoQ),
                           fmtI(cn.compiled.stats.twoQ)});
            double rq = qk_ex.successRate > 0
                            ? cn.executed.successRate / qk_ex.successRate
                            : 0.0;
            double rc = c.executed.successRate > 0
                            ? cn.executed.successRate /
                                  c.executed.successRate
                            : 0.0;
            vs_qiskit.add(rq);
            vs_c.add(rc);
            succ.addRow({name, bench::successCell(qk_ex),
                         bench::successCell(c.executed),
                         bench::successCell(cn.executed), fmtFactor(rq),
                         fmtFactor(rc)});
        });
    counts.print(std::cout);
    std::cout << "\n";
    succ.print(std::cout);
    std::cout << "CN/Qiskit " << vs_qiskit.summary()
              << "; paper: 3.0x (max 28x)\n";
    std::cout << "CN/C " << vs_c.summary()
              << "; paper: 1.4x (max 2.8x)\n\n";
}

void
rigettiPanel(const std::string &dev_name, int day, int trials)
{
    Device dev = bench::deviceByName(dev_name);
    Table tab("Fig. 11(c/d): success rate on " + dev.name() + " (" +
              std::to_string(trials) + " trials)");
    tab.setHeader({"benchmark", "Quil", "TriQ-1QOptCN", "improvement"});
    bench::Ratios ratios;
    bench::forEachStudyBenchmark(
        dev,
        [&](const std::string &name, const Circuit &program) {
            auto ql = compileQuilLike(program, dev);
            auto ql_ex = bench::runCompiled(ql, dev, day, trials);
            auto cn = bench::runTriq(program, dev, OptLevel::OneQOptCN,
                                     day, trials);
            double r = ql_ex.successRate > 0
                           ? cn.executed.successRate / ql_ex.successRate
                           : 0.0;
            ratios.add(r);
            tab.addRow({name, bench::successCell(ql_ex),
                        bench::successCell(cn.executed), fmtFactor(r)});
        },
        [&](const std::string &name) {
            tab.addRow({name, "X", "X", "-"});
        });
    tab.print(std::cout);
    std::cout << ratios.summary() << "; paper: 1.45x (max 2.3x)\n\n";
}

void
umdChains(int first_day, int trials)
{
    // Averaged over several calibration days: on a fully connected
    // machine the noise-unaware level picks an *arbitrary* ion triplet,
    // which is lucky on some days and unlucky on others; the mean
    // exposes the systematic gap the paper measures.
    constexpr int kDays = 4;
    Device dev = bench::deviceByName("UMDTI");
    for (bool fredkin : {false, true}) {
        const int maxlen = fredkin ? 7 : 8;
        Table tab(std::string("Fig. 11") + (fredkin ? "(f)" : "(e)") +
                  ": " + (fredkin ? "Fredkin" : "Toffoli") +
                  " chains on UMDTI (" + std::to_string(trials) +
                  " trials, avg of " + std::to_string(kDays) + " days)");
        tab.setHeader({"chain length", "TriQ-1QOptC", "TriQ-1QOptCN",
                       "improvement"});
        for (int k = 1; k <= maxlen; ++k) {
            Circuit program =
                fredkin ? makeFredkinChain(k) : makeToffoliChain(k);
            double sum_c = 0.0, sum_cn = 0.0;
            for (int day = first_day; day < first_day + kDays; ++day) {
                sum_c += bench::runTriq(program, dev, OptLevel::OneQOptC,
                                        day, trials)
                             .executed.successRate;
                sum_cn += bench::runTriq(program, dev,
                                         OptLevel::OneQOptCN, day,
                                         trials)
                              .executed.successRate;
            }
            double c = sum_c / kDays, cn = sum_cn / kDays;
            tab.addRow({fmtI(k), fmtF(c, 3), fmtF(cn, 3),
                        fmtFactor(c > 0 ? cn / c : 0.0)});
        }
        tab.print(std::cout);
        std::cout << "paper: up to " << (fredkin ? "1.35x" : "1.47x")
                  << ", gains grow with length\n\n";
    }
}

} // namespace

int
main()
{
    const int day = bench::defaultDay();
    const int trials = defaultTrials();
    ibmPanel(day, trials);
    rigettiPanel("Agave", day, trials);
    rigettiPanel("Aspen1", day, trials);
    umdChains(day, trials);
    return 0;
}
