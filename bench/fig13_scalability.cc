/**
 * @file
 * Sec. 6.5 reproduction: toolflow compile-time scaling on quantum
 * supremacy circuits up to the 72-qubit Bristlecone-class grid, with
 * per-gate error rates sampled from superconducting-like statistics.
 * The paper reports that TriQ-1QOptCN scales to 72 qubits with compile
 * times independent of gate count (the mapper sees only the O(n^2)
 * distinct interacting pairs).
 */

#include <chrono>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/supremacy.hh"

using namespace triq;

namespace
{

double
compileTimeMs(const Circuit &program, const Device &dev, MapperKind kind)
{
    Calibration calib = dev.calibrate(1);
    CompileOptions opts;
    opts.level = OptLevel::OneQOptCN;
    opts.mapping.kind = kind;
    opts.mapping.nodeBudget = 200000;
    // Explicit wall-clock ceiling: the scalability sweep must terminate
    // even on configurations where the node budget alone is too lax.
    opts.budget = CompileBudget::withDeadlineMs(30000.0);
    opts.emitAssembly = false;
    auto res = compileForDevice(program, dev, calib, opts);
    return res.compileMs;
}

} // namespace

int
main()
{
    struct Config
    {
        int rows, cols, depth;
    };
    const Config configs[] = {
        {2, 3, 16}, {3, 4, 24}, {4, 4, 32}, {4, 6, 48},
        {6, 6, 64}, {6, 9, 96}, {6, 12, 128},
    };

    Table tab("Sec. 6.5: compile time for supremacy circuits "
              "(TriQ-1QOptCN)");
    tab.setHeader({"qubits", "depth", "2Q gates", "greedy(ms)",
                   "bnb(ms)", "smt(ms)"});
    for (const auto &cfg : configs) {
        Device dev("Grid" + std::to_string(cfg.rows * cfg.cols),
                   Topology::grid(cfg.rows, cfg.cols), GateSet::ibm(),
                   bench::deviceByName("IBMQ14").noiseSpec());
        Circuit program = makeSupremacy(cfg.rows, cfg.cols, cfg.depth, 1);
        double greedy = compileTimeMs(program, dev, MapperKind::Greedy);
        double bnb =
            compileTimeMs(program, dev, MapperKind::BranchAndBound);
        // The SMT encoding is quadratic in device size per interaction;
        // measure it only where it stays snappy on one core (the B&B
        // engine carries the max-min objective to full scale).
        std::string smt = "-";
        if (smtMapperAvailable() && cfg.rows * cfg.cols <= 12)
            smt = fmtF(compileTimeMs(program, dev, MapperKind::Smt), 1);
        tab.addRow({fmtI(cfg.rows * cfg.cols), fmtI(cfg.depth),
                    fmtI(program.count2q()), fmtF(greedy, 1),
                    fmtF(bnb, 1), smt});
    }
    tab.print(std::cout);
    std::cout << "paper: full optimization of a 72-qubit, depth-128 "
                 "supremacy circuit completes;\ncompile time grows with "
                 "qubit count, not gate count\n";
    return 0;
}
