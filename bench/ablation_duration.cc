/**
 * @file
 * Duration vs. coherence analysis (Secs. 3.3 and 4.2): the paper
 * claims gate errors — not coherence times — are the binding
 * constraint on current machines ("the gate errors on both
 * superconducting and trapped ion prevent long gate sequences and are
 * more limiting than coherence times"). With the ESP model the two
 * loss factors separate exactly: success ~ (gate-error product) x
 * (coherence idle factor). This harness prints both per machine.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/esp.hh"
#include "core/schedule.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int day = bench::defaultDay();
    Table tab("gate-error loss vs coherence loss per machine "
              "(TriQ-1QOptCN, per-benchmark worst case)");
    tab.setHeader({"device", "T2 (us)", "longest circuit (us)",
                   "duration/T2", "gate-error factor",
                   "coherence factor"});
    for (const Device &dev : allStudyDevices()) {
        Calibration calib = dev.calibrate(day);
        double worst_gate = 1.0, worst_coh = 1.0, longest = 0.0;
        for (const std::string &name : benchmarkNames()) {
            Circuit program = makeBenchmark(name);
            if (program.numQubits() > dev.numQubits())
                continue;
            CompileOptions opts;
            opts.emitAssembly = false;
            CompileResult res =
                compileForDevice(program, dev, calib, opts);
            double gate_factor = 1.0;
            for (const auto &g : res.hwCircuit.gates())
                gate_factor *=
                    1.0 - gateErrorProb(g, dev.topology(), calib);
            ScheduleInfo sched =
                scheduleCircuit(res.hwCircuit, calib.durations);
            double coh_factor = 1.0;
            for (const auto &gap : sched.gaps)
                coh_factor *= std::exp(
                    -gap.us /
                    calib.t2Us[static_cast<size_t>(gap.qubit)]);
            worst_gate = std::min(worst_gate, gate_factor);
            worst_coh = std::min(worst_coh, coh_factor);
            longest = std::max(longest, sched.totalUs);
        }
        tab.addRow({dev.name(), fmtF(dev.noiseSpec().coherenceUs, 0),
                    fmtF(longest, 2),
                    fmtF(longest / dev.noiseSpec().coherenceUs, 4),
                    fmtF(worst_gate, 3), fmtF(worst_coh, 3)});
    }
    tab.print(std::cout);
    std::cout <<
        "\ngate-error factor << coherence factor on every machine: the\n"
        "paper's observation that gate errors, not coherence, limit\n"
        "NISQ programs (Sec. 4.2). UMDTI's T2 is ~6 orders above its\n"
        "circuit durations; superconducting machines burn a few percent\n"
        "of T2 per run but lose far more to 2Q gate errors.\n";
    return 0;
}
