/**
 * @file
 * Sweep-engine microbenchmark: runs a fig12-style grid (every study
 * benchmark x every study machine x the C and CN levels x a few
 * calibration days) through four configurations —
 *
 *   cold_serial   cache off, one thread (the pre-engine baseline:
 *                 every cell compiles from scratch);
 *   engine_cold   fresh cache, pooled workers (first sweep: the cache
 *                 fills, within-run dedup already saves work);
 *   warm          the same sweep again on the filled cache (every cell
 *                 must be an exact-fingerprint hit);
 *   drift_replay  fresh cache with a drift threshold: new days reuse
 *                 stale CN artifacts within the threshold and
 *                 recompile past it —
 *
 * and emits BENCH_sweep.json with wall clocks, the warm-vs-cold-serial
 * speedup, hit rates and drift counters.
 *
 * The run doubles as the acceptance check for the determinism
 * contract: every warm cache hit's canonical artifact text
 * (core/fingerprint.hh) must be byte-identical to the cold serial
 * compile of the same cell, and the engine-cold pass (parallel,
 * deduped) must match cold serial cell for cell. The process exits 4
 * on any mismatch and 5 when the warm sweep compiled anything.
 *
 * Usage:
 *   micro_sweep [--days N] [--threads N] [--drift T] [--reps N]
 *               [--json FILE]
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/fingerprint.hh"
#include "service/sweep.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

const char *
levelToken(OptLevel level)
{
    return level == OptLevel::OneQOptC ? "c" : "cn";
}

} // namespace

int
main(int argc, char **argv)
try {
    int days = 2;
    int threads = std::max(2, ThreadPool::hardwareThreads());
    int reps = 3;
    double drift = 0.05;
    std::string json_file;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("micro_sweep: ", flag, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--days"))
            days = std::atoi(need_value("--days"));
        else if (!std::strcmp(argv[i], "--threads"))
            threads = std::atoi(need_value("--threads"));
        else if (!std::strcmp(argv[i], "--drift"))
            drift = std::atof(need_value("--drift"));
        else if (!std::strcmp(argv[i], "--reps"))
            reps = std::atoi(need_value("--reps"));
        else if (!std::strcmp(argv[i], "--json"))
            json_file = need_value("--json");
        else
            fatal("micro_sweep: unknown argument '", argv[i], "'");
    }
    if (days < 1 || threads < 1 || reps < 1)
        fatal("micro_sweep: --days, --threads and --reps must be >= 1");

    // The fig12 grid: every study benchmark on every study machine at
    // the communication-optimized and noise-adaptive levels.
    SweepConfig cfg;
    for (const std::string &name : benchmarkNames())
        cfg.programs.push_back({name, makeBenchmark(name)});
    cfg.devices = allStudyDevices();
    for (int d = 0; d < days; ++d)
        cfg.days.push_back(d);
    cfg.levels = {OptLevel::OneQOptC, OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.threads = threads;
    cfg.driftThreshold = -1.0;

    auto sweepMs = [&](const SweepConfig &c, CompileCache *cache,
                       SweepResult *out) {
        auto t0 = std::chrono::steady_clock::now();
        SweepResult r = runSweep(c, cache);
        auto t1 = std::chrono::steady_clock::now();
        if (out)
            *out = std::move(r);
        return std::chrono::duration<double, std::milli>(t1 - t0)
            .count();
    };

    // --- cold serial: the pre-engine baseline and the identity oracle.
    SweepConfig serial = cfg;
    serial.useCache = false;
    serial.threads = 1;
    SweepResult cold;
    double cold_serial_ms = sweepMs(serial, nullptr, &cold);
    for (int rep = 1; rep < reps; ++rep)
        cold_serial_ms =
            std::min(cold_serial_ms, sweepMs(serial, nullptr, nullptr));
    std::vector<std::string> oracle(cold.cells.size());
    for (size_t i = 0; i < cold.cells.size(); ++i)
        if (cold.cells[i].result)
            oracle[i] = canonicalCompileResultText(*cold.cells[i].result);

    // --- engine cold + warm on one cache.
    CompileCache cache;
    SweepResult engine_cold, warm;
    double engine_cold_ms = sweepMs(cfg, &cache, &engine_cold);
    double warm_ms = sweepMs(cfg, &cache, &warm);
    for (int rep = 1; rep < reps; ++rep)
        warm_ms = std::min(warm_ms, sweepMs(cfg, &cache, nullptr));

    // Identity: parallel/deduped/warm artifacts must match cold serial
    // byte for byte, cell for cell.
    int mismatches = 0;
    auto checkIdentity = [&](const SweepResult &res, const char *pass) {
        for (size_t i = 0; i < res.cells.size(); ++i) {
            const SweepCell &c = res.cells[i];
            if (c.source == CellSource::Skipped)
                continue;
            if (canonicalCompileResultText(*c.result) != oracle[i]) {
                ++mismatches;
                std::cerr << "micro_sweep: " << pass << " cell "
                          << cfg.programs[c.programIndex].name << "/"
                          << cfg.devices[c.deviceIndex].name() << "/day"
                          << c.day << "/" << levelToken(c.level)
                          << " differs from cold serial\n";
            }
        }
    };
    checkIdentity(engine_cold, "engine_cold");
    checkIdentity(warm, "warm");
    int warm_compiles = warm.stats.compiles;

    // --- drift replay: fresh cache, day-by-day with a threshold.
    SweepConfig driftCfg = cfg;
    driftCfg.driftThreshold = drift;
    CompileCache drift_cache;
    SweepResult replay;
    double drift_ms = sweepMs(driftCfg, &drift_cache, &replay);
    CompileCache::Stats ds = drift_cache.stats();

    double speedup =
        warm_ms > 0.0 ? cold_serial_ms / warm_ms : 0.0;
    double hit_rate =
        warm.stats.cells > 0
            ? double(warm.stats.cacheHits) / warm.stats.cells
            : 0.0;

    std::ostringstream json;
    json << "{\n"
         << "  \"grid\": {\"programs\": " << cfg.programs.size()
         << ", \"devices\": " << cfg.devices.size()
         << ", \"days\": " << days << ", \"levels\": 2, \"cells\": "
         << cold.stats.cells << ", \"skipped\": " << cold.stats.skipped
         << "},\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"cold_serial_ms\": " << cold_serial_ms << ",\n"
         << "  \"engine_cold_ms\": " << engine_cold_ms << ",\n"
         << "  \"warm_ms\": " << warm_ms << ",\n"
         << "  \"drift_replay_ms\": " << drift_ms << ",\n"
         << "  \"engine_cold_compiles\": " << engine_cold.stats.compiles
         << ",\n"
         << "  \"engine_cold_cache_hits\": "
         << engine_cold.stats.cacheHits << ",\n"
         << "  \"warm_compiles\": " << warm_compiles << ",\n"
         << "  \"warm_hit_rate\": " << hit_rate << ",\n"
         << "  \"speedup_warm_vs_cold_serial\": " << speedup << ",\n"
         << "  \"speedup_engine_cold_vs_cold_serial\": "
         << (engine_cold_ms > 0.0 ? cold_serial_ms / engine_cold_ms
                                  : 0.0)
         << ",\n"
         << "  \"drift\": {\"threshold\": " << drift
         << ", \"compiles\": " << replay.stats.compiles
         << ", \"reuses\": " << replay.stats.driftReuses
         << ", \"recompiles\": " << replay.stats.driftRecompiles
         << ", \"checks\": " << ds.driftChecks
         << ", \"invalidations\": " << ds.driftInvalidations << "},\n"
         << "  \"identical\": " << (mismatches == 0 ? "true" : "false")
         << "\n}\n";

    std::cout << json.str();
    if (!json_file.empty()) {
        std::ofstream out(json_file);
        if (!out)
            fatal("micro_sweep: cannot write '", json_file, "'");
        out << json.str();
    }
    if (mismatches > 0)
        return 4;
    if (warm_compiles > 0)
        return 5;
    return 0;
} catch (const FatalError &) {
    return 1;
}
