/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: device lookup,
 * compile-and-execute helpers, and consistent run configuration.
 *
 * Environment knobs:
 *   TRIQ_TRIALS       trials per success-rate measurement (default
 *                     1000; the paper used 8192 / 5000 on hardware)
 *   TRIQ_DAY          calibration day index (default 3)
 *   TRIQ_SIM_THREADS  executor worker threads (default 1). Success
 *                     rates and histograms are bit-identical for any
 *                     value; only wall-clock time changes.
 */

#ifndef TRIQ_BENCH_BENCH_UTIL_HH
#define TRIQ_BENCH_BENCH_UTIL_HH

#include <functional>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "device/machines.hh"
#include "service/sweep.hh"
#include "sim/executor.hh"

namespace triq
{
namespace bench
{

/** Resolve one of the seven study devices by name. */
Device deviceByName(const std::string &name);

/** Calibration day index (TRIQ_DAY env, default 3). */
int defaultDay();

/**
 * The harness's process-wide compile memo. Every compile issued
 * through compileTriq/runTriq lands here, so a figure that evaluates
 * the same (program, device, day, level) cell twice — or two panels
 * that share cells — compiles it once. TRIQ_CACHE=0 bypasses it
 * (every call compiles cold).
 */
CompileCache &processCompileCache();

/**
 * Compile `program` for `dev` at `level` against day `day`'s
 * calibration, memoized in processCompileCache(). Cache hits are
 * bit-identical to a cold compile (the service-layer determinism
 * contract), so figures may use this freely.
 */
CompileResult compileTriq(const Circuit &program, const Device &dev,
                          OptLevel level, int day);

/**
 * Run `row(name, program)` for every study benchmark that fits on
 * `dev`, and `skip(name)` (when non-null) for each one too large —
 * the figures' shared "X" table convention.
 */
void forEachStudyBenchmark(
    const Device &dev,
    const std::function<void(const std::string &, const Circuit &)> &row,
    const std::function<void(const std::string &)> &skip = nullptr);

/** Improvement-ratio accumulator for the figures' summary lines. */
class Ratios
{
  public:
    /** Record a ratio; non-positive values (failed runs) are dropped. */
    void add(double r);

    /** "geomean: 1.4x  max: 2.8x" over everything recorded. */
    std::string summary() const;

  private:
    std::vector<double> ratios_;
};

/** A compiled-and-executed experiment point. */
struct RunPoint
{
    CompileResult compiled;
    ExecutionResult executed;
};

/**
 * Compile `program` for `dev` at `level` against day `day`'s
 * calibration, then execute it noisily on the same calibration.
 */
RunPoint runTriq(const Circuit &program, const Device &dev, OptLevel level,
                 int day, int trials);

/**
 * Execute an externally compiled result (e.g. a vendor baseline)
 * against day `day`'s calibration.
 */
ExecutionResult runCompiled(const CompileResult &res, const Device &dev,
                            int day, int trials);

/** Success-rate cell: "0.87" or "0.12*" when not modal (paper: failed). */
std::string successCell(const ExecutionResult &ex);

} // namespace bench
} // namespace triq

#endif // TRIQ_BENCH_BENCH_UTIL_HH
