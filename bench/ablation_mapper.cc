/**
 * @file
 * Mapper ablation (Sec. 4.3 design discussion): max-min objective vs
 * the whole-graph reliability product of prior work, across engines.
 * The paper's claim: max-min prunes drastically better (their SMT runs
 * three orders of magnitude faster than [46]) while giving comparable
 * success rates. This harness measures search nodes, compile time,
 * objective values and the resulting ESP on real device models.
 */

#include <chrono>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/decompose.hh"
#include "core/esp.hh"
#include "core/router.hh"
#include "workloads/benchmarks.hh"
#include "workloads/supremacy.hh"

using namespace triq;

namespace
{

struct Point
{
    double ms;
    long nodes;
    double minRel;
    double esp;
    bool optimal;
};

Point
run(const Circuit &program, const Device &dev, const Calibration &calib,
    MappingObjective objective)
{
    Circuit lowered = decomposeToCnotBasis(program);
    ReliabilityMatrix rel(dev.topology(), calib, dev.vendor());
    ProgramInfo info = ProgramInfo::fromCircuit(lowered);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    opts.objective = objective;
    opts.nodeBudget = 5000000;
    opts.budget = CompileBudget::withDeadlineMs(60000.0);
    auto t0 = std::chrono::steady_clock::now();
    Mapping m = mapQubits(info, rel, opts);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    RoutingResult routed =
        routeCircuit(lowered, m, dev.topology(), rel);
    TranslateResult tr = translateForDevice(
        routed.circuit, dev.topology(), dev.gateSet(),
        TranslateOptions{});
    double esp = estimatedSuccessProbability(tr.circuit, dev.topology(),
                                             calib);
    return {ms, m.nodesExplored, m.minReliability, esp, m.optimal};
}

} // namespace

int
main()
{
    const int day = bench::defaultDay();
    Table tab("ablation: max-min vs product mapping objective "
              "(branch-and-bound, exact)");
    tab.setHeader({"device", "benchmark", "maxmin nodes", "product nodes",
                   "node ratio", "maxmin ms", "product ms", "maxmin ESP",
                   "product ESP"});
    struct Case
    {
        const char *device;
        const char *bench;
    };
    const Case cases[] = {
        {"IBMQ14", "BV6"},    {"IBMQ14", "BV8"},  {"IBMQ14", "QFT"},
        {"IBMQ14", "Adder"},  {"IBMQ16", "BV8"},  {"IBMQ16", "QFT"},
        {"Aspen1", "Adder"},  {"Aspen3", "BV6"},  {"UMDTI", "Toffoli"},
    };
    for (const auto &c : cases) {
        Device dev = bench::deviceByName(c.device);
        Calibration calib = dev.calibrate(day);
        Circuit program = makeBenchmark(c.bench);
        Point mm = run(program, dev, calib, MappingObjective::MaxMin);
        Point pr = run(program, dev, calib, MappingObjective::Product);
        double ratio = mm.nodes > 0
                           ? static_cast<double>(pr.nodes) / mm.nodes
                           : 0.0;
        tab.addRow({c.device, c.bench, fmtI(mm.nodes), fmtI(pr.nodes),
                    fmtFactor(ratio), fmtF(mm.ms, 2), fmtF(pr.ms, 2),
                    fmtF(mm.esp, 3), fmtF(pr.esp, 3)});
    }
    tab.print(std::cout);
    std::cout <<
        "\npaper: the max-min objective lets the solver discard bad\n"
        "placements early; product-objective search must place most\n"
        "qubits before its bound bites (Sec. 4.3). ESPs stay "
        "comparable.\n\n";

    // Scaling comparison on supremacy circuits (greedy vs exact).
    Table scale("ablation: mapper engines on supremacy circuits");
    scale.setHeader(
        {"qubits", "engine", "objective", "ms", "min reliability"});
    for (int side : {4, 5, 6}) {
        Device dev("Grid" + std::to_string(side * side),
                   Topology::grid(side, side), GateSet::ibm(),
                   bench::deviceByName("IBMQ14").noiseSpec());
        Calibration calib = dev.calibrate(1);
        Circuit prog =
            makeSupremacy(side, side, 8 * side, 1, false);
        Circuit lowered = decomposeToCnotBasis(prog);
        ReliabilityMatrix rel(dev.topology(), calib, dev.vendor());
        ProgramInfo info = ProgramInfo::fromCircuit(lowered);
        for (MapperKind kind :
             {MapperKind::Greedy, MapperKind::BranchAndBound}) {
            MappingOptions opts;
            opts.kind = kind;
            opts.nodeBudget = 100000;
            opts.budget = CompileBudget::withDeadlineMs(30000.0);
            auto t0 = std::chrono::steady_clock::now();
            Mapping m = mapQubits(info, rel, opts);
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            scale.addRow({fmtI(side * side),
                          kind == MapperKind::Greedy ? "greedy"
                                                     : "bnb(100k)",
                          "maxmin", fmtF(ms, 1),
                          fmtF(m.minReliability, 4)});
        }
    }
    scale.print(std::cout);
    return 0;
}
