#include "bench_util.hh"

#include "common/env.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace triq
{
namespace bench
{

Device
deviceByName(const std::string &name)
{
    for (auto &d : allStudyDevices())
        if (d.name() == name)
            return d;
    fatal("bench: unknown device '", name, "'");
}

int
defaultDay()
{
    return envInt("TRIQ_DAY", 3, 0);
}

RunPoint
runTriq(const Circuit &program, const Device &dev, OptLevel level, int day,
        int trials)
{
    Calibration calib = dev.calibrate(day);
    CompileOptions opts;
    opts.level = level;
    opts.emitAssembly = false;
    RunPoint pt;
    pt.compiled = compileForDevice(program, dev, calib, opts);
    pt.executed = executeNoisy(pt.compiled.hwCircuit, dev, calib, trials,
                               0x5EED0000 + static_cast<uint64_t>(day));
    return pt;
}

ExecutionResult
runCompiled(const CompileResult &res, const Device &dev, int day,
            int trials)
{
    Calibration calib = dev.calibrate(day);
    return executeNoisy(res.hwCircuit, dev, calib, trials,
                        0x5EED0000 + static_cast<uint64_t>(day));
}

std::string
successCell(const ExecutionResult &ex)
{
    std::string s = fmtF(ex.successRate, 3);
    if (!ex.correctIsModal)
        s += "*";
    return s;
}

} // namespace bench
} // namespace triq
