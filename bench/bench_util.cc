#include "bench_util.hh"

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace bench
{

Device
deviceByName(const std::string &name)
{
    for (auto &d : allStudyDevices())
        if (d.name() == name)
            return d;
    fatal("bench: unknown device '", name, "'");
}

int
defaultDay()
{
    return envInt("TRIQ_DAY", 3, 0);
}

CompileCache &
processCompileCache()
{
    static CompileCache cache;
    return cache;
}

CompileResult
compileTriq(const Circuit &program, const Device &dev, OptLevel level,
            int day)
{
    Calibration calib = dev.calibrate(day);
    CompileOptions opts;
    opts.level = level;
    opts.emitAssembly = false;
    if (!cacheEnabledFromEnv())
        return compileForDevice(program, dev, calib, opts);
    CachedCompile cc = compileThroughCache(&processCompileCache(),
                                           program, dev, day, calib, opts);
    return *cc.result;
}

void
forEachStudyBenchmark(
    const Device &dev,
    const std::function<void(const std::string &, const Circuit &)> &row,
    const std::function<void(const std::string &)> &skip)
{
    for (const std::string &name : benchmarkNames()) {
        Circuit program = makeBenchmark(name);
        if (program.numQubits() > dev.numQubits()) {
            if (skip)
                skip(name);
            continue;
        }
        row(name, program);
    }
}

void
Ratios::add(double r)
{
    if (r > 0)
        ratios_.push_back(r);
}

std::string
Ratios::summary() const
{
    return "geomean: " + fmtFactor(geomean(ratios_)) +
           "  max: " + fmtFactor(maxOf(ratios_));
}

RunPoint
runTriq(const Circuit &program, const Device &dev, OptLevel level, int day,
        int trials)
{
    Calibration calib = dev.calibrate(day);
    RunPoint pt;
    pt.compiled = compileTriq(program, dev, level, day);
    pt.executed = executeNoisy(pt.compiled.hwCircuit, dev, calib, trials,
                               0x5EED0000 + static_cast<uint64_t>(day));
    return pt;
}

ExecutionResult
runCompiled(const CompileResult &res, const Device &dev, int day,
            int trials)
{
    Calibration calib = dev.calibrate(day);
    return executeNoisy(res.hwCircuit, dev, calib, trials,
                        0x5EED0000 + static_cast<uint64_t>(day));
}

std::string
successCell(const ExecutionResult &ex)
{
    std::string s = fmtF(ex.successRate, 3);
    if (!ex.correctIsModal)
        s += "*";
    return s;
}

} // namespace bench
} // namespace triq
