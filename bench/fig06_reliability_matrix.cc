/**
 * @file
 * Fig. 6 reproduction: the 2Q reliability matrix of the 8-qubit example
 * device. The paper's worked example: entry (1,6) = 0.9^3 * 0.8 = 0.58
 * (swap 1 next to 5, then gate 5->6).
 */

#include <iostream>

#include "common/table.hh"
#include "core/reliability.hh"
#include "device/machines.hh"

using namespace triq;

int
main()
{
    Device dev = makeExample8();
    std::vector<double> rels = fig6Reliabilities();

    // Install the figure's exact per-edge reliabilities.
    Calibration calib = dev.averageCalibration();
    for (size_t e = 0; e < rels.size(); ++e)
        calib.err2q[e] = 1.0 - rels[e];

    ReliabilityMatrix rel(dev.topology(), calib, Vendor::Rigetti);

    Table tab("Fig. 6(b): 2Q reliability matrix (example 8-qubit device)");
    std::vector<std::string> header{"q"};
    for (int j = 0; j < 8; ++j)
        header.push_back(std::to_string(j));
    tab.setHeader(header);
    for (int i = 0; i < 8; ++i) {
        std::vector<std::string> row{std::to_string(i)};
        for (int j = 0; j < 8; ++j)
            row.push_back(i == j ? "-"
                                 : fmtF(rel.pairReliability(i, j), 2));
        tab.addRow(row);
    }
    tab.print(std::cout);

    std::cout << "\nworked example (paper): (1,6) = 0.9^3 * 0.8 = 0.58; "
              << "measured: " << fmtF(rel.pairReliability(1, 6), 3)
              << "\nbest neighbor of 6 for control 1: q"
              << rel.bestNeighbor(1, 6) << " (paper: q5)\n";
    return 0;
}
