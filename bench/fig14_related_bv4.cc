/**
 * @file
 * Sec. 8 comparison point: BV4 on the 5-qubit IBM machine across six
 * days with different error conditions. The paper reports TriQ success
 * rates of 0.43-0.51 (average 0.47), about 2x the 0.23 reported by the
 * variability-aware policy study [65]; the noise-unaware vendor model
 * stands in for the baseline here.
 */

#include <iostream>

#include "baseline/vendor_compilers.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    Device dev = bench::deviceByName("IBMQ5");
    const int trials = defaultTrials();
    Circuit program = makeBenchmark("BV4");

    Table tab("Sec. 8: BV4 on IBMQ5 across 6 calibration days (" +
              std::to_string(trials) + " trials)");
    tab.setHeader({"day", "Qiskit-model", "TriQ-1QOptCN", "improvement"});
    std::vector<double> triq_sr, ratios;
    for (int day = 1; day <= 6; ++day) {
        auto qk = compileQiskitLike(program, dev);
        auto qk_ex = bench::runCompiled(qk, dev, day, trials);
        auto cn =
            bench::runTriq(program, dev, OptLevel::OneQOptCN, day, trials);
        triq_sr.push_back(cn.executed.successRate);
        double r = qk_ex.successRate > 0
                       ? cn.executed.successRate / qk_ex.successRate
                       : 0.0;
        if (r > 0)
            ratios.push_back(r);
        tab.addRow({fmtI(day), bench::successCell(qk_ex),
                    bench::successCell(cn.executed), fmtFactor(r)});
    }
    tab.print(std::cout);
    std::cout << "TriQ-1QOptCN: avg " << fmtF(mean(triq_sr), 3)
              << " range [" << fmtF(minOf(triq_sr), 3) << ", "
              << fmtF(maxOf(triq_sr), 3) << "]\n"
              << "paper: avg 0.47, range [0.43, 0.51], ~2x over the "
                 "noise-unaware baseline\n";
    return 0;
}
