/**
 * @file
 * Fig. 5 reproduction: the IR-level circuit for Bernstein-Vazirani with
 * 4 qubits (BV4) — program qubits with 1Q, 2Q and readout operations.
 */

#include <iostream>

#include "core/decompose.hh"
#include "core/draw.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    Circuit bv4 = makeBenchmark("BV4");
    std::cout << "== Fig. 5: BV4 program IR ==\n"
              << drawCircuit(bv4) << "\n"
              << bv4.str();
    std::cout << "1Q gates: " << bv4.count1q()
              << ", 2Q gates: " << bv4.count2q()
              << ", measured qubits: " << bv4.measuredQubits().size()
              << ", depth: " << bv4.depth() << "\n";
    Circuit lowered = decomposeToCnotBasis(bv4);
    std::cout << "\nCNOT-basis form has " << lowered.numGates()
              << " gates (" << lowered.count2q() << " CNOTs)\n";
    return 0;
}
