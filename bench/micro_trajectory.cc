/**
 * @file
 * Trajectory-engine microbenchmark: measures executeNoisy throughput
 * (trials/sec) on fig07-style compiled workloads in four
 * configurations — serial without prefix checkpointing, serial with
 * it, multi-threaded trajectories, and serial trajectories with
 * adaptive intra-state kernel threading — and emits one JSON object
 * with a row per benchmark so CI can track the simulator's
 * performance trajectory across PRs. The default row set (BV8, QFT,
 * Adder) spans the study's width range: BV8 is wide and shallow, QFT
 * and Adder are narrow and gate-dense, which is where checkpointing
 * and threading trade places. --wide appends 20-24-qubit GHZ
 * round-trip and QFT rows compiled onto the Google72 grid — the
 * register sizes where kernel threading (which shards amplitude
 * loops, not trials) starts to matter.
 *
 * The run doubles as a determinism check: all four configurations
 * must produce bit-identical results per row, and the JSON records
 * whether they did.
 *
 * Usage:
 *   micro_trajectory [--bench NAME]... [--device NAME] [--trials N]
 *                    [--threads N] [--wide] [--json FILE]
 *
 * --bench may be repeated; when given, only the named benchmarks run.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

double
runMs(const Circuit &hw, const Device &dev, const Calibration &calib,
      int trials, const ExecOptions &opts, ExecutionResult *out)
{
    auto t0 = std::chrono::steady_clock::now();
    ExecutionResult r = executeNoisy(hw, dev, calib, trials, 12345, opts);
    auto t1 = std::chrono::steady_clock::now();
    if (out)
        *out = std::move(r);
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double
trialsPerSec(int trials, double ms)
{
    return ms > 0.0 ? 1000.0 * trials / ms : 0.0;
}

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<std::string> bench_names;
    std::string device_name = "IBMQ14";
    std::string json_file;
    int trials = defaultTrials(2000);
    int threads = std::max(2, ThreadPool::hardwareThreads());
    bool wide = false;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("micro_trajectory: ", flag, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--bench"))
            bench_names.push_back(need_value("--bench"));
        else if (!std::strcmp(argv[i], "--device"))
            device_name = need_value("--device");
        else if (!std::strcmp(argv[i], "--trials"))
            trials = std::atoi(need_value("--trials"));
        else if (!std::strcmp(argv[i], "--threads"))
            threads = std::atoi(need_value("--threads"));
        else if (!std::strcmp(argv[i], "--wide"))
            wide = true;
        else if (!std::strcmp(argv[i], "--json"))
            json_file = need_value("--json");
        else
            fatal("micro_trajectory: unknown argument '", argv[i], "'");
    }
    if (bench_names.empty())
        bench_names = {"BV8", "QFT", "Adder"};
    if (trials < 1 || threads < 1)
        fatal("micro_trajectory: --trials and --threads must be >= 1");

    Device dev = bench::deviceByName(device_name);
    int day = bench::defaultDay();
    Calibration calib = dev.calibrate(day);

    // One compiled row per benchmark. Wide rows ride on the Google72
    // grid with the greedy mapper (B&B search over 72 qubits is a
    // mapper benchmark, not a simulator one) and a reduced trial
    // count: each faulty 20-24-qubit trajectory replays hundreds of
    // gates over megabytes of amplitudes, so a fraction of the
    // default trial count already dominates the narrow rows' work.
    struct RowSpec
    {
        std::string name;
        Circuit hw;
        Device dev;
        Calibration calib;
        int trials = 0;
    };
    std::vector<RowSpec> specs;
    for (const std::string &bench_name : bench_names) {
        Circuit program = makeBenchmark(bench_name);
        CompileOptions copts;
        copts.emitAssembly = false;
        CompileResult compiled =
            compileForDevice(program, dev, calib, copts);
        specs.push_back(
            {bench_name, compiled.hwCircuit, dev, calib, trials});
    }
    if (wide) {
        Device grid = makeGoogle72();
        Calibration gcal = grid.calibrate(day);
        int wide_trials = std::max(16, trials / 64);
        struct WideSpec
        {
            const char *name;
            Circuit program;
        };
        const WideSpec wide_specs[] = {
            {"GHZ20", makeGhzRoundTrip(20)},
            {"GHZ24", makeGhzRoundTrip(24)},
            {"QFT20", makeQft(20, 0b0101)},
        };
        for (const WideSpec &w : wide_specs) {
            CompileOptions copts;
            copts.emitAssembly = false;
            copts.mapping.kind = MapperKind::Greedy;
            CompileResult compiled =
                compileForDevice(w.program, grid, gcal, copts);
            specs.push_back(
                {w.name, compiled.hwCircuit, grid, gcal, wide_trials});
        }
    }

    bool all_identical = true;
    std::ostringstream rows;
    for (size_t bi = 0; bi < specs.size(); ++bi) {
        const RowSpec &spec = specs[bi];
        const std::string &bench_name = spec.name;
        const Device &row_dev = spec.dev;
        const Calibration &row_calib = spec.calib;
        const int row_trials = spec.trials;

        // Serial baseline with checkpointing off: every faulty
        // trajectory replays the full circuit from |0...0>, the
        // pre-optimization behavior.
        ExecOptions no_ckpt;
        no_ckpt.threads = 1;
        no_ckpt.checkpointInterval = -1;
        ExecutionResult r_base;
        double base_ms = runMs(spec.hw, row_dev, row_calib, row_trials,
                               no_ckpt, &r_base);

        // Serial with automatic prefix checkpointing.
        ExecOptions serial;
        serial.threads = 1;
        serial.kernelThreads = 1;
        ExecutionResult r_serial;
        double serial_ms = runMs(spec.hw, row_dev, row_calib,
                                 row_trials, serial, &r_serial);

        // Threaded with checkpointing; must match the serial run bit
        // for bit (chunk-sharded RNG + chunk-ordered merge).
        ExecOptions threaded;
        threaded.threads = threads;
        ExecutionResult r_threaded;
        double threaded_ms = runMs(spec.hw, row_dev, row_calib,
                                   row_trials, threaded, &r_threaded);

        // Serial trajectories with adaptive intra-state kernel
        // threading: the same memory plan as `serial` (kernel workers
        // add no state copies), sharding amplitude loops instead of
        // trials — the configuration the governor's low-memory plan
        // degrades to on big registers.
        ExecOptions kernel;
        kernel.threads = 1;
        kernel.kernelThreads = -1;
        ExecutionResult r_kernel;
        double kernel_ms = runMs(spec.hw, row_dev, row_calib,
                                 row_trials, kernel, &r_kernel);

        bool identical =
            r_serial.successRate == r_threaded.successRate &&
            r_serial.successRate == r_base.successRate &&
            r_serial.successRate == r_kernel.successRate &&
            r_serial.simulatedTrajectories ==
                r_threaded.simulatedTrajectories &&
            r_serial.simulatedTrajectories ==
                r_base.simulatedTrajectories &&
            r_serial.simulatedTrajectories ==
                r_kernel.simulatedTrajectories &&
            r_serial.histogram == r_threaded.histogram &&
            r_serial.histogram == r_base.histogram &&
            r_serial.histogram == r_kernel.histogram;
        all_identical = all_identical && identical;

        rows << "    {\n"
             << "      \"benchmark\": \"" << bench_name << "\",\n"
             << "      \"device\": \"" << row_dev.name() << "\",\n"
             << "      \"trials\": " << row_trials << ",\n"
             << "      \"simulated_trajectories\": "
             << r_serial.simulatedTrajectories << ",\n"
             << "      \"success_rate\": " << r_serial.successRate
             << ",\n"
             << "      \"serial_no_checkpoint_ms\": " << base_ms << ",\n"
             << "      \"serial_no_checkpoint_trials_per_sec\": "
             << trialsPerSec(row_trials, base_ms) << ",\n"
             << "      \"serial_ms\": " << serial_ms << ",\n"
             << "      \"serial_trials_per_sec\": "
             << trialsPerSec(row_trials, serial_ms) << ",\n"
             << "      \"checkpoint_speedup\": "
             << (serial_ms > 0.0 ? base_ms / serial_ms : 0.0) << ",\n"
             << "      \"threaded_ms\": " << threaded_ms << ",\n"
             << "      \"threaded_trials_per_sec\": "
             << trialsPerSec(row_trials, threaded_ms) << ",\n"
             << "      \"thread_speedup\": "
             << (threaded_ms > 0.0 ? serial_ms / threaded_ms : 0.0)
             << ",\n"
             << "      \"kernel_ms\": " << kernel_ms << ",\n"
             << "      \"kernel_trials_per_sec\": "
             << trialsPerSec(row_trials, kernel_ms) << ",\n"
             << "      \"kernel_speedup\": "
             << (kernel_ms > 0.0 ? serial_ms / kernel_ms : 0.0)
             << ",\n"
             << "      \"identical_across_configs\": "
             << (identical ? "true" : "false") << "\n"
             << "    }"
             << (bi + 1 == specs.size() ? "\n" : ",\n");
    }

    std::ostringstream json;
    json << "{\n"
         << "  \"device\": \"" << device_name << "\",\n"
         << "  \"day\": " << day << ",\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"rows\": [\n"
         << rows.str() << "  ],\n"
         << "  \"identical_across_configs\": "
         << (all_identical ? "true" : "false") << "\n"
         << "}\n";

    std::cout << json.str();
    if (!json_file.empty()) {
        std::ofstream out(json_file);
        if (!out)
            fatal("micro_trajectory: cannot write '", json_file, "'");
        out << json.str();
    }
    return all_identical ? 0 : 4;
} catch (const FatalError &) {
    return 1;
}
