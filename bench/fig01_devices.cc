/**
 * @file
 * Fig. 1 reproduction: characteristics of the seven devices. Values are
 * read back from the device models so the table proves the models match
 * the paper's inventory.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "device/machines.hh"

using namespace triq;

namespace
{

std::string
topoDescription(const Device &dev)
{
    const Topology &t = dev.topology();
    if (t.fullyConnected())
        return "full";
    int n = t.numQubits(), e = t.numEdges();
    if (e == n - 1)
        return "line";
    if (e == n)
        return "ring/loops";
    return "sparse grid";
}

} // namespace

int
main()
{
    Table tab("Fig. 1: devices used in the study");
    tab.setHeader({"machine", "qubits", "2Q gates", "coherence(us)",
                   "1Q err(%)", "2Q err(%)", "RO err(%)", "topology"});
    for (const Device &dev : allStudyDevices()) {
        const NoiseSpec &ns = dev.noiseSpec();
        tab.addRow({dev.name(), fmtI(dev.numQubits()),
                    fmtI(dev.topology().numEdges()),
                    fmtF(ns.coherenceUs, 1), fmtF(100 * ns.mean1q, 2),
                    fmtF(100 * ns.mean2q, 2), fmtF(100 * ns.meanRO, 2),
                    topoDescription(dev)});
    }
    tab.print(std::cout);
    std::cout << "\npaper reference: IBMQ5 5q/6g, IBMQ14 14q/18g, "
                 "IBMQ16 16q/22g,\nAgave 4q/3g, Aspen 16q/18g, "
                 "UMDTI 5q/10g (fully connected)\n";
    return 0;
}
