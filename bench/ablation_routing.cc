/**
 * @file
 * Routing-policy ablation (Sec. 4.4): hold the placement fixed (the
 * identity layout) and vary only which reliability matrix steers SWAP
 * insertion — average error rates (hop-shortest paths) versus the
 * day's calibration (most-reliable paths). Isolates the router's share
 * of the noise-adaptivity win from the mapper's.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/decompose.hh"
#include "core/esp.hh"
#include "core/router.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

struct Outcome
{
    int twoQ;
    double success;
};

Outcome
routeAndRun(const Circuit &program, const Device &dev,
            const Calibration &truth, bool noise_aware_paths, int day,
            int trials)
{
    Circuit lowered = decomposeToCnotBasis(program);
    Calibration avg = dev.averageCalibration();
    ReliabilityMatrix rel(dev.topology(),
                          noise_aware_paths ? truth : avg,
                          dev.vendor());
    ProgramInfo info = ProgramInfo::fromCircuit(lowered);
    Mapping mapping = trivialMapping(info, rel);
    RoutingResult routed =
        routeCircuit(lowered, mapping, dev.topology(), rel);
    TranslateResult tr = translateForDevice(
        routed.circuit, dev.topology(), dev.gateSet(),
        TranslateOptions{});
    ExecutionResult run = executeNoisy(
        tr.circuit, dev, truth, trials,
        0x5EED0000 + static_cast<uint64_t>(day));
    return {tr.stats.twoQ, run.successRate};
}

} // namespace

int
main()
{
    const int trials = defaultTrials();
    Device dev = bench::deviceByName("IBMQ16");

    // Average over several days: path choice only matters when the
    // day's bad edges sit on the hop-shortest route.
    constexpr int kDays = 4;
    Table tab("Sec. 4.4 ablation: hop-shortest vs most-reliable swap "
              "paths, identity layout on " +
              dev.name() + " (" + std::to_string(trials) +
              " trials, avg of " + std::to_string(kDays) + " days)");
    tab.setHeader({"benchmark", "2Q (hop)", "2Q (reliable)",
                   "success (hop)", "success (reliable)",
                   "improvement"});
    std::vector<double> ratios;
    for (const std::string &name :
         {std::string("BV6"), std::string("BV8"), std::string("QFT"),
          std::string("Adder"), std::string("Fredkin"),
          std::string("Toffoli")}) {
        Circuit program = makeBenchmark(name);
        double hop_sum = 0.0, rel_sum = 0.0;
        int hop_2q = 0, rel_2q = 0;
        for (int day = 1; day <= kDays; ++day) {
            Calibration truth = dev.calibrate(day);
            Outcome hop =
                routeAndRun(program, dev, truth, false, day, trials);
            Outcome reliable =
                routeAndRun(program, dev, truth, true, day, trials);
            hop_sum += hop.success;
            rel_sum += reliable.success;
            hop_2q = hop.twoQ;
            rel_2q = reliable.twoQ;
        }
        double hop_avg = hop_sum / kDays, rel_avg = rel_sum / kDays;
        double r = hop_avg > 0 ? rel_avg / hop_avg : 0.0;
        if (r > 0)
            ratios.push_back(r);
        tab.addRow({name, fmtI(hop_2q), fmtI(rel_2q), fmtF(hop_avg, 3),
                    fmtF(rel_avg, 3), fmtFactor(r)});
    }
    tab.print(std::cout);
    std::cout << "geomean: " << fmtFactor(geomean(ratios))
              << "\nfinding: with the placement pinned, path choice "
                 "alone moves little (and can\nregress when dodging a "
                 "bad edge costs extra swaps whose dynamic remapping\n"
                 "the static estimate cannot see) — the noise-aware "
                 "*placement* carries most\nof TriQ-1QOptCN's win, "
                 "consistent with Sec. 6.3's emphasis on mapping\n";
    return 0;
}
