/**
 * @file
 * Fig. 3 reproduction: daily variation of 2Q error rates on IBMQ14.
 * The paper tracks four hardware CNOTs over 26 days and observes the
 * 2Q error averaging 7.95% but varying ~9x across qubits and days.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace triq;

int
main()
{
    Device dev = bench::deviceByName("IBMQ14");
    const Topology &topo = dev.topology();

    // The paper's four tracked gates: CNOT 6,8; 7,8; 9,8; 13,1.
    struct Tracked
    {
        int a, b;
    };
    const Tracked tracked[] = {{6, 8}, {7, 8}, {9, 8}, {13, 1}};

    Table tab("Fig. 3: daily 2Q error variation on IBMQ14 (26 days)");
    tab.setHeader({"day", "CNOT 6,8", "CNOT 7,8", "CNOT 9,8",
                   "CNOT 13,1"});

    double lo = 1.0, hi = 0.0, sum = 0.0;
    long count = 0;
    for (int day = 1; day <= 26; ++day) {
        Calibration c = dev.calibrate(day);
        std::vector<std::string> row{fmtI(day)};
        for (const auto &t : tracked) {
            int e = topo.edgeBetween(t.a, t.b);
            double err = c.err2q[static_cast<size_t>(e)];
            row.push_back(fmtF(err, 4));
        }
        tab.addRow(row);
        for (double err : c.err2q) {
            lo = std::min(lo, err);
            hi = std::max(hi, err);
            sum += err;
            ++count;
        }
    }
    tab.print(std::cout);
    std::cout << "\nall edges, all days: mean="
              << fmtF(100.0 * sum / static_cast<double>(count), 2)
              << "% min=" << fmtF(100 * lo, 2) << "% max="
              << fmtF(100 * hi, 2) << "%  spread=" << fmtFactor(hi / lo)
              << "\npaper: mean 7.95%, ~9x variation across qubits/days\n";
    return 0;
}
