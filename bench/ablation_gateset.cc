/**
 * @file
 * Gate-set exposure what-if (Sec. 6.4): "On Aspen1 and Aspen3, more
 * powerful native operations can be exploited to reduce the number of
 * 2Q operations for some of our benchmarks. These operations were not
 * software-visible ... exposing them to the compiler would enable
 * higher success rates."
 *
 * This harness compiles the phase-heavy benchmarks for Aspen3 twice:
 * with the study-era gate set (CZ only) and with parametric CPHASE
 * exposed. A controlled-phase in the program then costs one 2Q gate
 * instead of two CNOTs (each itself a CZ + 1Q gates).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int day = bench::defaultDay();
    const int trials = defaultTrials();

    Device study = bench::deviceByName("Aspen3");
    // Same name on purpose: calibration synthesis is seeded by the
    // device name, so both variants see identical noise and the
    // comparison isolates the gate-set exposure.
    Device extended(study.name(), study.topology(),
                    GateSet::rigettiExtended(), study.noiseSpec());

    Table tab("Sec. 6.4 what-if: exposing native CPHASE on Aspen3 (" +
              std::to_string(trials) + " trials)");
    tab.setHeader({"benchmark", "2Q (CZ only)", "2Q (+CPHASE)",
                   "success (CZ only)", "success (+CPHASE)",
                   "improvement"});
    for (const std::string &name :
         {std::string("QFT"), std::string("HS4"), std::string("HS6"),
          std::string("Adder"), std::string("Toffoli"),
          std::string("BV6")}) {
        Circuit program = makeBenchmark(name);
        if (program.numQubits() > study.numQubits())
            continue;
        auto base = bench::runTriq(program, study, OptLevel::OneQOptCN,
                                   day, trials);
        auto ext = bench::runTriq(program, extended,
                                  OptLevel::OneQOptCN, day, trials);
        double r = base.executed.successRate > 0
                       ? ext.executed.successRate /
                             base.executed.successRate
                       : 0.0;
        tab.addRow({name, fmtI(base.compiled.stats.twoQ),
                    fmtI(ext.compiled.stats.twoQ),
                    bench::successCell(base.executed),
                    bench::successCell(ext.executed), fmtFactor(r)});
    }
    tab.print(std::cout);
    std::cout << "QFT is controlled-phase heavy: exposing CPHASE "
                 "halves its raw 2Q gate cost\n(each CP was two CZs), "
                 "exactly the Sec. 6.4 recommendation. HS's CZs were\n"
                 "already a native special case, and CNOT-based "
                 "benchmarks are unaffected.\n";
    return 0;
}
