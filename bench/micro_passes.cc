/**
 * @file
 * Google-benchmark microbenchmarks for the individual compiler passes:
 * decomposition, reliability-matrix construction, the three mapping
 * engines, routing, translation and the end-to-end flow. Complements
 * the figure harnesses with pass-level performance tracking.
 */

#include <benchmark/benchmark.h>

#include "core/compiler.hh"
#include "core/decompose.hh"
#include "core/router.hh"
#include "device/machines.hh"
#include "workloads/benchmarks.hh"
#include "workloads/supremacy.hh"

namespace triq
{
namespace
{

const Device &
ibmq14()
{
    static Device dev = makeIbmQ14();
    return dev;
}

const Calibration &
calib14()
{
    static Calibration c = ibmq14().calibrate(3);
    return c;
}

void
BM_DecomposeToffoli(benchmark::State &state)
{
    Circuit c = makeBenchmark("Fredkin");
    for (auto _ : state)
        benchmark::DoNotOptimize(decomposeToCnotBasis(c));
}
BENCHMARK(BM_DecomposeToffoli);

void
BM_ReliabilityMatrix(benchmark::State &state)
{
    for (auto _ : state) {
        ReliabilityMatrix rel(ibmq14().topology(), calib14(),
                              Vendor::IBM);
        benchmark::DoNotOptimize(rel.pairReliability(0, 13));
    }
}
BENCHMARK(BM_ReliabilityMatrix);

void
BM_Mapper(benchmark::State &state)
{
    MapperKind kind = static_cast<MapperKind>(state.range(0));
    Circuit prog = decomposeToCnotBasis(makeBenchmark("BV8"));
    ProgramInfo info = ProgramInfo::fromCircuit(prog);
    ReliabilityMatrix rel(ibmq14().topology(), calib14(), Vendor::IBM);
    MappingOptions opts;
    opts.kind = kind;
    for (auto _ : state) {
        // Fresh deadline per iteration: a loop-hoisted budget would
        // expire mid-run and silently degrade later iterations.
        opts.budget = CompileBudget::withDeadlineMs(10000.0);
        benchmark::DoNotOptimize(mapQubits(info, rel, opts));
    }
}
BENCHMARK(BM_Mapper)
    ->Arg(static_cast<int>(MapperKind::Greedy))
    ->Arg(static_cast<int>(MapperKind::BranchAndBound))
    ->Arg(static_cast<int>(MapperKind::Smt));

void
BM_Router(benchmark::State &state)
{
    Circuit prog = decomposeToCnotBasis(makeBenchmark("QFT"));
    ProgramInfo info = ProgramInfo::fromCircuit(prog);
    ReliabilityMatrix rel(ibmq14().topology(), calib14(), Vendor::IBM);
    Mapping m = mapQubits(info, rel, MappingOptions{});
    for (auto _ : state)
        benchmark::DoNotOptimize(
            routeCircuit(prog, m, ibmq14().topology(), rel));
}
BENCHMARK(BM_Router);

void
BM_Translate(benchmark::State &state)
{
    Circuit prog = decomposeToCnotBasis(makeBenchmark("QFT"));
    ProgramInfo info = ProgramInfo::fromCircuit(prog);
    ReliabilityMatrix rel(ibmq14().topology(), calib14(), Vendor::IBM);
    Mapping m = mapQubits(info, rel, MappingOptions{});
    RoutingResult routed =
        routeCircuit(prog, m, ibmq14().topology(), rel);
    for (auto _ : state)
        benchmark::DoNotOptimize(translateForDevice(
            routed.circuit, ibmq14().topology(), ibmq14().gateSet(),
            TranslateOptions{}));
    state.SetItemsProcessed(state.iterations() *
                            routed.circuit.numGates());
}
BENCHMARK(BM_Translate);

void
BM_EndToEnd(benchmark::State &state)
{
    Circuit prog = makeBenchmark("Adder");
    CompileOptions opts;
    opts.emitAssembly = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            compileForDevice(prog, ibmq14(), calib14(), opts));
}
BENCHMARK(BM_EndToEnd);

void
BM_EndToEndSupremacy36(benchmark::State &state)
{
    Device dev("Grid36", Topology::grid(6, 6), GateSet::ibm(),
               ibmq14().noiseSpec());
    Circuit prog = makeSupremacy(6, 6, 32, 1);
    Calibration calib = dev.calibrate(1);
    CompileOptions opts;
    opts.mapping.kind = MapperKind::Greedy;
    opts.emitAssembly = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            compileForDevice(prog, dev, calib, opts));
}
BENCHMARK(BM_EndToEndSupremacy36);

} // namespace
} // namespace triq

BENCHMARK_MAIN();
