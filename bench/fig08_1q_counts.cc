/**
 * @file
 * Fig. 8 reproduction: native 1Q operation counts (actual X/Y pulses)
 * for TriQ-N vs TriQ-1QOpt on IBMQ14, Rigetti Agave and UMDTI.
 * Paper: up to 4.6x reduction; geomean 1.4x (IBM), 1.4x (Rigetti),
 * 1.6x (UMD).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int day = bench::defaultDay();
    for (const char *dev_name : {"IBMQ14", "Agave", "UMDTI"}) {
        Device dev = bench::deviceByName(dev_name);
        Table tab("Fig. 8: native 1Q pulse counts on " + dev.name());
        tab.setHeader({"benchmark", "TriQ-N", "TriQ-1QOpt", "reduction"});
        bench::Ratios ratios;
        bench::forEachStudyBenchmark(
            dev,
            [&](const std::string &name, const Circuit &program) {
                auto naive =
                    bench::compileTriq(program, dev, OptLevel::N, day);
                auto fused = bench::compileTriq(program, dev,
                                                OptLevel::OneQOpt, day);
                double ratio =
                    fused.stats.pulses1q > 0
                        ? static_cast<double>(naive.stats.pulses1q) /
                              fused.stats.pulses1q
                        : 0.0;
                ratios.add(ratio);
                tab.addRow({name, fmtI(naive.stats.pulses1q),
                            fmtI(fused.stats.pulses1q),
                            fmtFactor(ratio)});
            },
            [&](const std::string &name) {
                tab.addRow({name, "X", "X", "-"});
            });
        tab.print(std::cout);
        std::cout << "reduction " << ratios.summary() << "\n";
        const char *paper = dev.name() == "UMDTI" ? "1.6x" : "1.4x";
        std::cout << "paper geomean: " << paper << " (max 4.6x)\n\n";
    }
    return 0;
}
