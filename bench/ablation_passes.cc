/**
 * @file
 * Pass ablations beyond the paper's Table-1 levels:
 *  (a) peephole inverse-pair cancellation (a rewrite TriQ as published
 *      does not perform; Sec. 8 compares against such optimizers);
 *  (b) crosstalk sensitivity: how predicted success degrades when
 *      simultaneous 2Q gates on adjacent edges interfere, and how much
 *      serialization recovers (motivates schedule-aware compilation,
 *      one of the paper's forward-looking directions).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/serialize.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

void
peepholeAblation(int day, int trials)
{
    Device dev = bench::deviceByName("IBMQ14");
    Table tab("ablation: peephole cancellation on IBMQ14 (" +
              std::to_string(trials) + " trials)");
    tab.setHeader({"benchmark", "2Q (off)", "2Q (on)", "success (off)",
                   "success (on)"});
    for (const std::string &name : benchmarkNames()) {
        Circuit program = makeBenchmark(name);
        Calibration calib = dev.calibrate(day);
        CompileOptions opts;
        opts.emitAssembly = false;
        opts.peephole = false;
        auto off = compileForDevice(program, dev, calib, opts);
        auto off_ex = bench::runCompiled(off, dev, day, trials);
        opts.peephole = true;
        auto on = compileForDevice(program, dev, calib, opts);
        auto on_ex = bench::runCompiled(on, dev, day, trials);
        tab.addRow({name, fmtI(off.stats.twoQ), fmtI(on.stats.twoQ),
                    bench::successCell(off_ex),
                    bench::successCell(on_ex)});
    }
    tab.print(std::cout);
    std::cout <<
        "Peres ends its Toffoli expansion with the same CNOT the "
        "program applies next,\nso the pass halves its 2Q count. "
        "QFT+IQFT boundary pairs stay blocked: the\nconservative pass "
        "will not commute phase gates off a CNOT target.\n\n";
}

void
crosstalkAblation(int trials)
{
    // Inflate crosstalk on an IBMQ14-like device, watch predicted
    // success degrade for parallel-heavy benchmarks, and measure how
    // much the serialization pass recovers (at the cost of idling).
    Table tab("ablation: crosstalk sensitivity and serialization "
              "recovery (HS6 on an IBMQ14-class device, " +
              std::to_string(trials) + " trials)");
    tab.setHeader({"crosstalk factor", "HS6", "HS6 serialized", "BV6"});
    Device base = bench::deviceByName("IBMQ14");
    for (double factor : {0.0, 0.5, 1.0, 2.0}) {
        NoiseSpec spec = base.noiseSpec();
        spec.crosstalkFactor = factor;
        Device dev("IBMQ14", base.topology(), base.gateSet(), spec);
        Calibration calib = dev.calibrate(3);
        std::vector<std::string> row{fmtF(factor, 1)};

        auto hs = bench::runTriq(makeBenchmark("HS6"), dev,
                                 OptLevel::OneQOptCN, 3, trials);
        row.push_back(bench::successCell(hs.executed));
        Circuit serialized = serializeAdjacentTwoQ(
            hs.compiled.hwCircuit, dev.topology());
        ExecutionResult ser =
            executeNoisy(serialized, dev, calib, trials);
        row.push_back(bench::successCell(ser));

        auto bv = bench::runTriq(makeBenchmark("BV6"), dev,
                                 OptLevel::OneQOptCN, 3, trials);
        row.push_back(bench::successCell(bv.executed));
        tab.addRow(row);
    }
    tab.print(std::cout);
    std::cout << "HS6 runs its CZ pairs simultaneously, so crosstalk "
                 "bites harder than on BV6's\nserial CNOT chain; "
                 "serializing adjacent 2Q gates buys the loss back "
                 "once the\ncrosstalk penalty exceeds the extra idle "
                 "decoherence\n";
}

} // namespace

int
main()
{
    const int day = bench::defaultDay();
    const int trials = defaultTrials();
    peepholeAblation(day, trials);
    crosstalkAblation(trials);
    return 0;
}
