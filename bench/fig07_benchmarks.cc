/**
 * @file
 * Fig. 7 reproduction: summary of the 12 study benchmarks — qubit
 * counts and gate counts in the technology-independent CNOT basis.
 */

#include <iostream>

#include "common/table.hh"
#include "core/decompose.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    Table tab("Fig. 7: benchmark summary (CNOT-basis gate counts)");
    tab.setHeader({"benchmark", "qubits", "1Q gates", "2Q gates",
                   "measured", "depth"});
    for (const std::string &name : benchmarkNames()) {
        Circuit c = makeBenchmark(name);
        Circuit lowered = decomposeToCnotBasis(c);
        tab.addRow({name, fmtI(c.numQubits()), fmtI(lowered.count1q()),
                    fmtI(lowered.count2q()),
                    fmtI(static_cast<long>(c.measuredQubits().size())),
                    fmtI(lowered.depth())});
    }
    tab.print(std::cout);
    return 0;
}
