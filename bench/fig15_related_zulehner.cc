/**
 * @file
 * Sec. 8 comparison point vs [71] (Zulehner-Paler-Wille A* mapping):
 * "Compared to the open source implementation of [71], TriQ reduces 2Q
 * gate count by 1.2x (geomean), up to 2x." This harness runs the
 * layered A* router model against TriQ-1QOptC (both noise-unaware, so
 * the comparison isolates placement + routing policy) on the IBM
 * machines and reports translated 2Q gate counts.
 */

#include <iostream>

#include "baseline/astar_router.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/decompose.hh"
#include "core/translate.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

int
astarTwoQCount(const Circuit &program, const Device &dev)
{
    Circuit lowered = decomposeToCnotBasis(program);
    AstarRoutingResult routed =
        routeAstarLayered(lowered, dev.topology());
    TranslateResult tr = translateForDevice(
        routed.circuit, dev.topology(), dev.gateSet(),
        TranslateOptions{});
    return tr.stats.twoQ;
}

} // namespace

int
main()
{
    for (const char *dev_name : {"IBMQ14", "IBMQ16"}) {
        Device dev = bench::deviceByName(dev_name);
        Calibration calib = dev.calibrate(bench::defaultDay());
        Table tab("Sec. 8: 2Q gate count, A*-layered ([71] model) vs "
                  "TriQ-1QOptC on " +
                  dev.name());
        tab.setHeader(
            {"benchmark", "A* layered", "TriQ-1QOptC", "reduction"});
        std::vector<double> ratios;
        for (const std::string &name : benchmarkNames()) {
            Circuit program = makeBenchmark(name);
            int astar = astarTwoQCount(program, dev);
            CompileOptions opts;
            opts.level = OptLevel::OneQOptC;
            opts.emitAssembly = false;
            auto triq = compileForDevice(program, dev, calib, opts);
            double r = triq.stats.twoQ > 0
                           ? static_cast<double>(astar) /
                                 triq.stats.twoQ
                           : 0.0;
            if (r > 0)
                ratios.push_back(r);
            tab.addRow({name, fmtI(astar), fmtI(triq.stats.twoQ),
                        fmtFactor(r)});
        }
        tab.print(std::cout);
        std::cout << "geomean reduction: " << fmtFactor(geomean(ratios))
                  << "  max: " << fmtFactor(maxOf(ratios))
                  << "\npaper: geomean 1.2x, up to 2x\n\n";
    }
    return 0;
}
