/**
 * @file
 * Fig. 12 reproduction: success rate for the 12 benchmarks on all seven
 * systems, compiled with TriQ-1QOptCN. The paper's observations to
 * check: UMDTI leads on benchmarks that fit its 5 qubits; triangle
 * benchmarks (Toffoli/Fredkin/Or/Peres) do well on IBMQ5's bowtie;
 * Agave trails due to its error rates; more qubits help when the
 * application-topology match is reasonable.
 *
 * The whole 12x7 grid is compiled in one sweep-engine pass (parallel,
 * deduplicated, memoized in the process compile cache — see
 * src/service/sweep.hh); only the noisy executions then run per cell.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int day = bench::defaultDay();
    const int trials = defaultTrials();

    SweepConfig cfg;
    for (const std::string &name : benchmarkNames())
        cfg.programs.push_back({name, makeBenchmark(name)});
    cfg.devices = allStudyDevices();
    cfg.days = {day};
    cfg.levels = {OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    SweepResult sweep = runSweep(cfg, &bench::processCompileCache());

    Table tab("Fig. 12: success rate, 12 benchmarks x 7 systems, "
              "TriQ-1QOptCN (" +
              std::to_string(trials) + " trials)");
    std::vector<std::string> header{"benchmark"};
    for (const Device &d : cfg.devices)
        header.push_back(d.name());
    tab.setHeader(header);

    // Cells come back in grid order: programs x devices (one day, one
    // level), so the table is a straight walk.
    const size_t nd = cfg.devices.size();
    for (size_t pi = 0; pi < cfg.programs.size(); ++pi) {
        std::vector<std::string> row{cfg.programs[pi].name};
        for (size_t di = 0; di < nd; ++di) {
            const SweepCell &cell = sweep.cells[pi * nd + di];
            if (cell.source == CellSource::Skipped) {
                row.push_back("X");
                continue;
            }
            const Device &dev = cfg.devices[di];
            ExecutionResult ex = executeNoisy(
                cell.result->hwCircuit, dev, dev.calibrate(day), trials,
                0x5EED0000 + static_cast<uint64_t>(day));
            row.push_back(bench::successCell(ex));
        }
        tab.addRow(row);
    }
    tab.print(std::cout);
    std::cout << "(X = benchmark too large for machine; * = correct "
                 "answer not modal, a failed run)\n";
    std::cout << "compiled " << sweep.stats.compiles << " of "
              << sweep.stats.cells << " cells ("
              << sweep.stats.cacheHits << " cache hits) in "
              << sweep.stats.wallMs << " ms\n";
    return 0;
}
