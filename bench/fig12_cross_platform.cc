/**
 * @file
 * Fig. 12 reproduction: success rate for the 12 benchmarks on all seven
 * systems, compiled with TriQ-1QOptCN. The paper's observations to
 * check: UMDTI leads on benchmarks that fit its 5 qubits; triangle
 * benchmarks (Toffoli/Fredkin/Or/Peres) do well on IBMQ5's bowtie;
 * Agave trails due to its error rates; more qubits help when the
 * application-topology match is reasonable.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int day = bench::defaultDay();
    const int trials = defaultTrials();
    std::vector<Device> devices = allStudyDevices();

    Table tab("Fig. 12: success rate, 12 benchmarks x 7 systems, "
              "TriQ-1QOptCN (" +
              std::to_string(trials) + " trials)");
    std::vector<std::string> header{"benchmark"};
    for (const Device &d : devices)
        header.push_back(d.name());
    tab.setHeader(header);

    for (const std::string &name : benchmarkNames()) {
        Circuit program = makeBenchmark(name);
        std::vector<std::string> row{name};
        for (const Device &dev : devices) {
            if (program.numQubits() > dev.numQubits()) {
                row.push_back("X");
                continue;
            }
            auto pt = bench::runTriq(program, dev, OptLevel::OneQOptCN,
                                     day, trials);
            row.push_back(bench::successCell(pt.executed));
        }
        tab.addRow(row);
    }
    tab.print(std::cout);
    std::cout << "(X = benchmark too large for machine; * = correct "
                 "answer not modal, a failed run)\n";
    return 0;
}
