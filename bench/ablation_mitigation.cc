/**
 * @file
 * Readout-error mitigation study (extension): the paper's calibration
 * feeds include per-qubit readout errors up to 16.4 % (Agave); using
 * those same numbers to invert the readout confusion matrices recovers
 * a large fraction of the lost success probability — the
 * measurement-mitigation technique mainstream toolchains adopted soon
 * after the paper.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/mitigation.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int day = bench::defaultDay();
    const int trials = defaultTrials(4000);
    for (const char *dev_name : {"Agave", "IBMQ14", "UMDTI"}) {
        Device dev = bench::deviceByName(dev_name);
        Calibration calib = dev.calibrate(day);
        Table tab("readout mitigation on " + dev.name() + " (RO err " +
                  fmtF(100 * dev.noiseSpec().meanRO, 1) + "%, " +
                  std::to_string(trials) + " trials)");
        tab.setHeader(
            {"benchmark", "raw success", "mitigated", "recovery"});
        std::vector<double> gains;
        for (const std::string &name : benchmarkNames()) {
            Circuit program = makeBenchmark(name);
            if (program.numQubits() > dev.numQubits()) {
                tab.addRow({name, "X", "X", "-"});
                continue;
            }
            auto pt = bench::runTriq(program, dev, OptLevel::OneQOptCN,
                                     day, trials);
            std::vector<double> ro = measuredReadoutErrors(
                pt.compiled.hwCircuit, calib);
            double mitigated = mitigatedSuccess(
                pt.executed.histogram, ro,
                pt.executed.correctOutcome);
            double gain = pt.executed.successRate > 0
                              ? mitigated / pt.executed.successRate
                              : 0.0;
            if (gain > 0)
                gains.push_back(gain);
            tab.addRow({name, bench::successCell(pt.executed),
                        fmtF(mitigated, 3), fmtFactor(gain)});
        }
        tab.print(std::cout);
        std::cout << "geomean recovery: " << fmtFactor(geomean(gains))
                  << "\n\n";
    }
    std::cout << "mitigation pays most where readout error dominates "
                 "(Agave); it cannot\nrecover gate errors, so deep "
                 "circuits stay limited by 2Q noise\n";
    return 0;
}
