/**
 * @file
 * Fig. 9 reproduction: measured success rate for TriQ-N vs TriQ-1QOpt
 * on IBMQ14 and UMDTI. Paper: 1Q fusion and error-free Z rotations give
 * up to 1.26x (geomean 1.09x IBM, 1.03x UMD).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int day = bench::defaultDay();
    const int trials = defaultTrials();
    for (const char *dev_name : {"IBMQ14", "UMDTI"}) {
        Device dev = bench::deviceByName(dev_name);
        Table tab("Fig. 9: success rate, TriQ-N vs TriQ-1QOpt on " +
                  dev.name() + " (" + std::to_string(trials) + " trials)");
        tab.setHeader(
            {"benchmark", "TriQ-N", "TriQ-1QOpt", "improvement"});
        bench::Ratios ratios;
        bench::forEachStudyBenchmark(
            dev,
            [&](const std::string &name, const Circuit &program) {
                auto n = bench::runTriq(program, dev, OptLevel::N, day,
                                        trials);
                auto o = bench::runTriq(program, dev, OptLevel::OneQOpt,
                                        day, trials);
                double ratio = n.executed.successRate > 0
                                   ? o.executed.successRate /
                                         n.executed.successRate
                                   : 0.0;
                ratios.add(ratio);
                tab.addRow({name, bench::successCell(n.executed),
                            bench::successCell(o.executed),
                            fmtFactor(ratio)});
            },
            [&](const std::string &name) {
                tab.addRow({name, "X", "X", "-"});
            });
        tab.print(std::cout);
        std::cout << "(* = correct answer not modal; paper plots these "
                     "as failed runs)\n";
        std::cout << "improvement " << ratios.summary() << "\n";
        std::cout << "paper geomean: "
                  << (dev.name() == "UMDTI" ? "1.03x" : "1.09x")
                  << " (max 1.26x)\n\n";
    }
    return 0;
}
