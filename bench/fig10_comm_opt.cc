/**
 * @file
 * Fig. 10 reproduction: importance of communication optimization.
 * (a) 2Q gate counts on IBMQ14, TriQ-1QOpt (default mapping) vs
 *     TriQ-1QOptC (communication-optimized mapping); paper: up to 22x,
 *     geomean 2.1x.
 * (b) Same on Rigetti Agave; paper: up to 3.5x, geomean 1.3x.
 * (c) Success rates on IBMQ14 for both levels.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

void
gateCountTable(const std::string &dev_name, const char *paper_note)
{
    Device dev = bench::deviceByName(dev_name);
    const int day = bench::defaultDay();
    Table tab("Fig. 10: 2Q gate counts on " + dev.name());
    tab.setHeader({"benchmark", "TriQ-1QOpt", "TriQ-1QOptC", "reduction"});
    bench::Ratios ratios;
    bench::forEachStudyBenchmark(
        dev,
        [&](const std::string &name, const Circuit &program) {
            auto deflt =
                bench::compileTriq(program, dev, OptLevel::OneQOpt, day);
            auto comm =
                bench::compileTriq(program, dev, OptLevel::OneQOptC, day);
            double ratio = comm.stats.twoQ > 0
                               ? static_cast<double>(deflt.stats.twoQ) /
                                     comm.stats.twoQ
                               : 0.0;
            ratios.add(ratio);
            tab.addRow({name, fmtI(deflt.stats.twoQ),
                        fmtI(comm.stats.twoQ), fmtFactor(ratio)});
        },
        [&](const std::string &name) {
            tab.addRow({name, "X", "X", "-"});
        });
    tab.print(std::cout);
    std::cout << "reduction " << ratios.summary() << "\npaper: "
              << paper_note << "\n\n";
}

} // namespace

int
main()
{
    gateCountTable("IBMQ14", "up to 22x, geomean 2.1x");
    gateCountTable("Agave", "up to 3.5x, geomean 1.3x");

    // (c) Success rates on IBMQ14.
    Device dev = bench::deviceByName("IBMQ14");
    const int day = bench::defaultDay();
    const int trials = defaultTrials();
    Table tab("Fig. 10(c): success rate on IBMQ14 (" +
              std::to_string(trials) + " trials)");
    tab.setHeader({"benchmark", "TriQ-1QOpt", "TriQ-1QOptC"});
    bench::forEachStudyBenchmark(
        dev, [&](const std::string &name, const Circuit &program) {
            auto o = bench::runTriq(program, dev, OptLevel::OneQOpt, day,
                                    trials);
            auto c = bench::runTriq(program, dev, OptLevel::OneQOptC, day,
                                    trials);
            tab.addRow({name, bench::successCell(o.executed),
                        bench::successCell(c.executed)});
        });
    tab.print(std::cout);
    std::cout << "(* = correct answer not modal; paper: failed run)\n"
              << "paper: comm-opt lets BV6/BV8/Toffoli succeed where the "
                 "default mapping fails;\nQFT can regress when "
                 "noise-unaware placement lands on bad qubits\n";
    return 0;
}
