/**
 * @file
 * Adaptive-scheduler microbenchmark: times every scheduler consumer in
 * its three modes — forced serial, forced threaded, adaptive
 * (cost-model) — and emits BENCH_sched.json so CI can hold the
 * scheduler to its contract: adaptive must never lose to serial.
 *
 * Rows:
 *   - every fig07 study benchmark, noisy-executed on IBMQ14 (the
 *     trial-batch consumer; small circuits must stay serial);
 *   - fig13-style supremacy circuits on 6- and 12-qubit grids (the
 *     large-sim end of the range; bigger grids belong to fig13's
 *     compile-only study);
 *   - a cold and a warm sweep of the study benchmarks on IBMQ14 (the
 *     per-day compile fan-out consumer; the warm sweep is all cache
 *     hits and must stay serial).
 *
 * Timing protocol: modes are interleaved with the order rotated every
 * repetition (a fixed order biases whichever mode runs after the
 * threaded one wakes the pool workers), and each mode keeps its
 * minimum over --reps repetitions, so one-time effects (pool spawn,
 * allocator warm-up) and scheduler noise cannot bias a single mode.
 *
 * The gate: adaptive_speedup = serial_ms / adaptive_ms must be >=
 * --tolerance (default 0.90) on every row, OR the absolute loss
 * adaptive_ms - serial_ms must be under --noise-floor-ms (default
 * 1.0). When the model correctly picks serial the two runs execute
 * identical code, so the ratio is 1.0 +- timer noise — a strict
 * >= 1.0 gate would flake on every other run (measured spread on a
 * shared-CPU box: +-8% even at min-over-5-reps), and the
 * sub-millisecond rows exceed any relative tolerance on pure jitter,
 * hence both bounds; a genuine mis-scheduling (threading a job that
 * loses) costs far more than 10%. Exit codes: 4 when any mode
 * disagrees with serial results (determinism breach), 6 when the gate
 * fails, 0 otherwise.
 *
 * Usage:
 *   micro_sched [--trials N] [--reps N] [--tolerance X]
 *               [--noise-floor-ms X] [--json FILE]
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/sched.hh"
#include "common/thread_pool.hh"
#include "workloads/benchmarks.hh"
#include "workloads/supremacy.hh"

using namespace triq;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** One benchmark row: min-over-reps per mode plus the adaptive plan. */
struct Row
{
    std::string name;
    std::string kind; //!< "sim" or "sweep".
    int items = 0;    //!< Trials (sim) or grid cells (sweep).
    double serialMs = 0.0;
    double threadedMs = 0.0;
    double adaptiveMs = 0.0;
    bool identical = true;

    // The adaptive run's recorded decision.
    std::string mode;
    int threads = 1;
    int itemsPerTask = 1;
    int tasks = 0;
    double predictedMs = 0.0;
    double actualMs = 0.0;

    double
    adaptiveSpeedup() const
    {
        return adaptiveMs > 0.0 ? serialMs / adaptiveMs : 0.0;
    }

    double
    threadSpeedup() const
    {
        return threadedMs > 0.0 ? serialMs / threadedMs : 0.0;
    }
};

void
emitRow(std::ostringstream &json, const Row &r, bool last)
{
    json << "    {\"name\": \"" << r.name << "\", \"kind\": \"" << r.kind
         << "\", \"items\": " << r.items
         << ", \"serial_ms\": " << r.serialMs
         << ", \"threaded_ms\": " << r.threadedMs
         << ", \"adaptive_ms\": " << r.adaptiveMs
         << ", \"adaptive_speedup\": " << r.adaptiveSpeedup()
         << ", \"thread_speedup\": " << r.threadSpeedup()
         << ", \"adaptive_mode\": \"" << r.mode << "\""
         << ", \"threads\": " << r.threads
         << ", \"items_per_task\": " << r.itemsPerTask
         << ", \"tasks\": " << r.tasks
         << ", \"predicted_ms\": " << r.predictedMs
         << ", \"actual_ms\": " << r.actualMs
         << ", \"identical\": " << (r.identical ? "true" : "false")
         << "}" << (last ? "\n" : ",\n");
}

/** Time executeNoisy in the three modes, interleaved, min over reps. */
Row
simRow(const std::string &name, const Circuit &hw, const Device &dev,
       const Calibration &calib, int trials, int reps, int threads)
{
    Row row;
    row.name = name;
    row.kind = "sim";
    row.items = trials;

    ExecOptions mode_opts[3];
    mode_opts[0].threads = 1;        // forced serial
    mode_opts[1].threads = threads;  // forced threaded
    mode_opts[2].threads = -1;       // adaptive
    double *mode_ms[3] = {&row.serialMs, &row.threadedMs,
                          &row.adaptiveMs};

    ExecutionResult baseline;
    for (int m = 0; m < 3; ++m) {
        // Untimed warm-up: pool spawn, calibration, allocator.
        ExecutionResult r =
            executeNoisy(hw, dev, calib, trials, 12345, mode_opts[m]);
        if (m == 0) {
            baseline = std::move(r);
        } else if (r.histogram != baseline.histogram ||
                   r.successRate != baseline.successRate) {
            row.identical = false;
        }
    }
    for (int rep = 0; rep < reps; ++rep)
        for (int k = 0; k < 3; ++k) {
            int m = (rep + k) % 3; // rotate the order (see header)
            auto t0 = Clock::now();
            ExecutionResult r =
                executeNoisy(hw, dev, calib, trials, 12345, mode_opts[m]);
            double ms = msSince(t0);
            if (rep == 0 || ms < *mode_ms[m])
                *mode_ms[m] = ms;
            if (m == 2) {
                row.mode = r.sched.mode();
                row.threads = r.sched.threads;
                row.itemsPerTask = r.sched.itemsPerTask;
                row.tasks = r.sched.tasks;
                row.predictedMs = r.sched.predictedMs;
                row.actualMs = r.sched.actualMs;
            }
            if (r.histogram != baseline.histogram)
                row.identical = false;
        }
    return row;
}

/** Time runSweep in the three modes; cold = fresh cache per run. */
Row
sweepRow(const std::string &name, const SweepConfig &base, int reps,
         int threads, bool warm)
{
    Row row;
    row.name = name;
    row.kind = "sweep";

    int mode_threads[3] = {1, threads, -1};
    double *mode_ms[3] = {&row.serialMs, &row.threadedMs,
                          &row.adaptiveMs};

    // Warm mode keeps one pre-filled cache per mode; cold uses a fresh
    // cache for every timed run.
    std::vector<std::unique_ptr<CompileCache>> warm_caches;
    if (warm)
        for (int m = 0; m < 3; ++m) {
            warm_caches.push_back(std::make_unique<CompileCache>());
            SweepConfig cfg = base;
            cfg.threads = mode_threads[m];
            runSweep(cfg, warm_caches[m].get());
        }

    std::vector<double> esp_baseline;
    for (int rep = 0; rep < reps; ++rep)
        for (int k = 0; k < 3; ++k) {
            int m = (rep + k) % 3; // rotate the order (see header)
            SweepConfig cfg = base;
            cfg.threads = mode_threads[m];
            std::unique_ptr<CompileCache> cold_cache;
            if (!warm)
                cold_cache = std::make_unique<CompileCache>();
            CompileCache *cache =
                warm ? warm_caches[m].get() : cold_cache.get();
            auto t0 = Clock::now();
            SweepResult res = runSweep(cfg, cache);
            double ms = msSince(t0);
            if (rep == 0 || ms < *mode_ms[m])
                *mode_ms[m] = ms;
            row.items = res.stats.cells;
            if (m == 2) {
                row.mode = res.stats.schedMode;
                row.threads = res.stats.threads;
                row.itemsPerTask = res.stats.schedItemsPerTask;
                row.tasks = res.stats.schedTasks;
                row.predictedMs = res.stats.schedPredictedMs;
                row.actualMs = res.stats.schedActualMs;
            }
            // The scheduler must never change what is computed.
            std::vector<double> esps;
            for (const SweepCell &c : res.cells)
                esps.push_back(c.esp);
            if (rep == 0 && m == 0)
                esp_baseline = std::move(esps);
            else if (esps != esp_baseline)
                row.identical = false;
        }
    return row;
}

} // namespace

int
main(int argc, char **argv)
try {
    int trials = defaultTrials(1000);
    int reps = 5;
    double tolerance = 0.90;
    double noise_floor_ms = 1.0;
    std::string json_file;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("micro_sched: ", flag, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--trials"))
            trials = std::atoi(need_value("--trials"));
        else if (!std::strcmp(argv[i], "--reps"))
            reps = std::atoi(need_value("--reps"));
        else if (!std::strcmp(argv[i], "--tolerance"))
            tolerance = std::atof(need_value("--tolerance"));
        else if (!std::strcmp(argv[i], "--noise-floor-ms"))
            noise_floor_ms = std::atof(need_value("--noise-floor-ms"));
        else if (!std::strcmp(argv[i], "--json"))
            json_file = need_value("--json");
        else
            fatal("micro_sched: unknown argument '", argv[i], "'");
    }
    if (trials < 1 || reps < 1)
        fatal("micro_sched: --trials and --reps must be >= 1");

    const SchedCalib &calib_model = schedCalib(); // measure up front
    const int threads = std::max(2, ThreadPool::hardwareThreads());
    std::vector<Row> rows;

    // --- fig07 study benchmarks on IBMQ14 (trial-batch consumer).
    Device dev = bench::deviceByName("IBMQ14");
    int day = bench::defaultDay();
    Calibration calib = dev.calibrate(day);
    bench::forEachStudyBenchmark(
        dev, [&](const std::string &name, const Circuit &program) {
            CompileResult compiled = bench::compileTriq(
                program, dev, OptLevel::OneQOptCN, day);
            rows.push_back(simRow(name, compiled.hwCircuit, dev, calib,
                                  trials, reps, threads));
        });

    // --- fig13-style supremacy circuits (large-sim rows). Trials are
    // scaled down: each faulty trajectory replays hundreds of gates on
    // thousands of amplitudes, so a fraction of the fig07 trial count
    // already dominates the fig07 rows' total work.
    struct SupConfig
    {
        int rows, cols, depth;
    };
    const SupConfig sup_configs[] = {{2, 3, 16}, {3, 4, 24}};
    int sup_trials = std::max(32, trials / 8);
    for (const auto &cfg : sup_configs) {
        int n = cfg.rows * cfg.cols;
        Device grid("Grid" + std::to_string(n),
                    Topology::grid(cfg.rows, cfg.cols), GateSet::ibm(),
                    dev.noiseSpec());
        Calibration gcal = grid.calibrate(1);
        Circuit program =
            makeSupremacy(cfg.rows, cfg.cols, cfg.depth, 1);
        CompileOptions copts;
        copts.level = OptLevel::OneQOptCN;
        copts.mapping.kind = MapperKind::Greedy;
        copts.emitAssembly = false;
        CompileResult compiled =
            compileForDevice(program, grid, gcal, copts);
        rows.push_back(simRow("Supremacy" + std::to_string(n) + "d" +
                                  std::to_string(cfg.depth),
                              compiled.hwCircuit, grid, gcal, sup_trials,
                              reps, threads));
    }

    // --- sweep fan-out rows: the study grid on IBMQ14, two days, both
    // levels. Cold compiles everything; warm must be all cache hits
    // (near-zero work — the scheduler has to keep it serial).
    SweepConfig sweep_cfg;
    for (const std::string &name : benchmarkNames())
        sweep_cfg.programs.push_back({name, makeBenchmark(name)});
    sweep_cfg.devices = {dev};
    sweep_cfg.days = {0, 1};
    sweep_cfg.levels = {OptLevel::OneQOptC, OptLevel::OneQOptCN};
    sweep_cfg.options.emitAssembly = false;
    sweep_cfg.driftThreshold = -1.0;
    rows.push_back(
        sweepRow("sweep_cold", sweep_cfg, reps, threads, false));
    rows.push_back(
        sweepRow("sweep_warm", sweep_cfg, reps, threads, true));

    // --- the gate.
    bool identical = true;
    bool gate_ok = true;
    for (const Row &r : rows) {
        identical = identical && r.identical;
        if (r.adaptiveSpeedup() < tolerance &&
            r.adaptiveMs - r.serialMs > noise_floor_ms) {
            gate_ok = false;
            std::cerr << "micro_sched: GATE " << r.name
                      << ": adaptive_speedup " << r.adaptiveSpeedup()
                      << " < tolerance " << tolerance
                      << " and the loss exceeds the noise floor (serial "
                      << r.serialMs << " ms, adaptive " << r.adaptiveMs
                      << " ms, chose " << r.mode << ")\n";
        }
    }

    std::ostringstream json;
    json << "{\n"
         << "  \"calib\": \"" << schedCalibString(calib_model) << "\",\n"
         << "  \"hardware_threads\": "
         << ThreadPool::hardwareThreads() << ",\n"
         << "  \"forced_threads\": " << threads << ",\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"tolerance\": " << tolerance << ",\n"
         << "  \"noise_floor_ms\": " << noise_floor_ms << ",\n"
         << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i)
        emitRow(json, rows[i], i + 1 == rows.size());
    json << "  ],\n"
         << "  \"identical_across_modes\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"gate_pass\": " << (gate_ok ? "true" : "false") << "\n"
         << "}\n";

    std::cout << json.str();
    if (!json_file.empty()) {
        std::ofstream out(json_file);
        if (!out)
            fatal("micro_sched: cannot write '", json_file, "'");
        out << json.str();
    }
    if (!identical)
        return 4;
    if (!gate_ok)
        return 6;
    return 0;
} catch (const FatalError &) {
    return 1;
}
