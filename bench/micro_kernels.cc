/**
 * @file
 * Gate-kernel microbenchmark: per-family amplitude-pass bandwidth
 * (GB/s) of the dense/diagonal/controlled state-vector kernels in
 * three threading modes — forced serial, forced threaded, adaptive
 * (TRIQ_KERNEL_THREADS=0 semantics) — plus the cache-blocked tiling
 * speedup of the fusion pass, across a sweep of register sizes.
 * Emits BENCH_kernels.json so CI can hold the kernels to their
 * contract: adaptive must never lose to serial, and every mode and
 * toggle must produce bit-identical amplitudes.
 *
 * Timing protocol matches micro_sched: modes are interleaved with the
 * order rotated every repetition and each mode keeps its minimum over
 * --reps repetitions, so pool spawn and allocator warm-up cannot bias
 * a single mode. Bandwidth counts each kernel call as one read+write
 * pass over the full state (2 x 16 B x 2^n per call) — approximate
 * for the controlled kernels, which skip half their loads, but
 * consistent across modes, which is what the gate compares.
 *
 * The gate (exit 6): on every kernel row where the cost model
 * actually planned threading (adaptive_planned_threads > 1),
 * adaptive_speedup = serial_ms / adaptive_ms must be >= --tolerance
 * (default 0.90) OR the absolute loss must be under --noise-floor-ms
 * (default 1.0). Rows the planner kept serial are exempt: there the
 * adaptive run executes the identical serial code path (the decision
 * a 1-CPU box always reaches), so any measured ratio is pure timer
 * and scheduler noise and gating it would only test the host's noise
 * level, not the planner. Exempt rows still feed the bit-identity
 * check. Exit 4: any amplitude divergence between modes or between
 * the tiled and untiled fusion paths (the determinism breach CI must
 * never admit). Tiling speedups are reported, not gated: they depend
 * on the host's cache hierarchy, and the acceptance check reads them
 * from the JSON.
 *
 * Usage:
 *   micro_kernels [--qubits N,N,...] [--reps N] [--tile B]
 *                 [--tolerance X] [--noise-floor-ms X] [--json FILE]
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/sched.hh"
#include "common/thread_pool.hh"
#include "core/unitary.hh"
#include "sim/fusion.hh"
#include "sim/statevector.hh"

using namespace triq;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** A cheap non-trivial state: superposed, every kernel path exercised. */
StateVector
initialState(int nq)
{
    StateVector sv(nq);
    sv.applyGate(Gate::h(0));
    sv.applyGate(Gate::u3(1, 0.7, 0.3, -0.4));
    sv.applyGate(Gate::cnot(0, nq - 1));
    return sv;
}

bool
bitIdentical(const StateVector &a, const StateVector &b)
{
    return std::memcmp(a.amps().data(), b.amps().data(),
                       a.dim() * sizeof(Cplx)) == 0;
}

/**
 * One kernel family: a fixed body of kernel calls covering the
 * family's code paths (qubit 0's interleaved layout, middle qubits,
 * the top qubit). `passes` is the body's full-state pass count, for
 * the bandwidth figure.
 */
struct Family
{
    const char *name;
    int passes;
    void (*apply)(StateVector &sv);
};

const Family kFamilies[] = {
    {"dense1q", 3,
     [](StateVector &sv) {
         const Matrix m = gateMatrix(Gate::u3(0, 0.7, -0.3, 1.1));
         sv.applyMatrix1(m, 0);
         sv.applyMatrix1(m, sv.numQubits() / 2);
         sv.applyMatrix1(m, sv.numQubits() - 1);
     }},
    {"fused2q", 2,
     [](StateVector &sv) {
         const Matrix m2 = gateMatrix(Gate::xx(0, 1, 0.8));
         Cplx f2[16];
         for (int r = 0; r < 4; ++r)
             for (int c = 0; c < 4; ++c)
                 f2[r * 4 + c] = m2(r, c);
         sv.applyFused2(f2, 0, sv.numQubits() - 1);
         sv.applyFused2(f2, 1, 2);
     }},
    {"fused3q", 2,
     [](StateVector &sv) {
         const Matrix m3 = gateMatrix(Gate::ccx(0, 1, 2));
         Cplx f3[64];
         for (int r = 0; r < 8; ++r)
             for (int c = 0; c < 8; ++c)
                 f3[r * 8 + c] = m3(r, c);
         sv.applyFused3(f3, 0, 1, sv.numQubits() - 1);
         sv.applyFused3(f3, 1, 2, 3);
     }},
    {"diagonal", 3,
     [](StateVector &sv) {
         sv.applyRz(0, 0.9);
         sv.applyRz(sv.numQubits() - 1, -0.4);
         const int qs[3] = {0, 1, sv.numQubits() - 1};
         Cplx table[8];
         for (int i = 0; i < 8; ++i)
             table[i] = Cplx(std::cos(0.1 * i), std::sin(0.1 * i));
         sv.applyDiagonal(table, qs, 3);
     }},
    {"controlled", 4,
     [](StateVector &sv) {
         const int top = sv.numQubits() - 1;
         sv.applyCnot(0, top);
         sv.applyCz(1, top);
         sv.applyCphase(0, 2, 1.3);
         sv.applySwap(0, top);
     }},
};

struct KernelRow
{
    std::string family;
    int qubits = 0;
    int adaptivePlannedThreads = 1;
    double serialMs = 0.0;
    double threadedMs = 0.0;
    double adaptiveMs = 0.0;
    bool identical = true;

    double
    passBytes(int passes) const
    {
        return passes * 2.0 * 16.0 *
               static_cast<double>(uint64_t{1} << qubits);
    }

    double
    gbPerSec(double ms, int passes) const
    {
        return ms > 0.0 ? passBytes(passes) / (ms * 1e6) : 0.0;
    }

    double
    adaptiveSpeedup() const
    {
        return adaptiveMs > 0.0 ? serialMs / adaptiveMs : 0.0;
    }
};

/** Time one family at one size in the three modes; check identity. */
KernelRow
kernelRow(const Family &fam, int nq, int reps, int threads)
{
    KernelRow row;
    row.family = fam.name;
    row.qubits = nq;

    // What the adaptive setting will actually do at this size (the
    // families' per-call amp_ops are all within 2x of one full-state
    // pass, so one representative plan covers the row). When the plan
    // is serial, the adaptive timing below runs the identical code
    // path as the serial mode and the speedup gate skips the row.
    const SchedDecision plan = planKernel(
        schedCalib(), static_cast<double>(uint64_t{1} << nq), 0, true);
    row.adaptivePlannedThreads = plan.threaded ? plan.threads : 1;

    const int mode_setting[3] = {1, threads, 0};
    double *mode_ms[3] = {&row.serialMs, &row.threadedMs,
                          &row.adaptiveMs};

    // Identity check (and per-mode warm-up): one run per mode from the
    // same initial state, compared bit for bit against serial.
    const StateVector init = initialState(nq);
    StateVector baseline = init;
    baseline.setKernelThreads(1);
    fam.apply(baseline);
    for (int m = 1; m < 3; ++m) {
        StateVector sv = init;
        sv.setKernelThreads(mode_setting[m]);
        fam.apply(sv);
        if (!bitIdentical(sv, baseline))
            row.identical = false;
    }

    // Timed runs: the state evolves unitarily in place (kernels touch
    // every amplitude regardless of its value), modes rotate.
    StateVector sv = init;
    for (int rep = 0; rep < reps; ++rep)
        for (int k = 0; k < 3; ++k) {
            int m = (rep + k) % 3;
            sv.setKernelThreads(mode_setting[m]);
            auto t0 = Clock::now();
            fam.apply(sv);
            double ms = msSince(t0);
            if (rep == 0 || ms < *mode_ms[m])
                *mode_ms[m] = ms;
        }
    return row;
}

struct TileRow
{
    int qubits = 0;
    int tileBits = 0;
    int tileRuns = 0;
    int tiledOps = 0;
    double untiledMs = 0.0;
    double tiledMs = 0.0;
    bool identical = true;

    double
    speedup() const
    {
        return tiledMs > 0.0 ? untiledMs / tiledMs : 0.0;
    }
};

/**
 * The tiling workload: a long run of low-qubit dense and diagonal
 * gates — after fusion, a chain of tileable operators, so untiled
 * application streams the full state once per operator while tiled
 * application keeps each 2^tile-amplitude block cache-hot across the
 * whole chain.
 */
Circuit
tiledWorkload()
{
    // 8 reps x 8 gates on qubits {0, 1, 2}: the fusion pass emits a
    // chain of consecutive Dense3/Diag operators (maxGatesPerOp splits
    // the chain), all of whose operands sit below any tile boundary —
    // the shape tiling rewards, since untiled application streams the
    // full state once per operator.
    Circuit c(3, "tiles");
    for (int rep = 0; rep < 8; ++rep) {
        c.add(Gate::u3(0, 0.3, 0.1, -0.2));
        c.add(Gate::cnot(0, 1));
        c.add(Gate::u3(1, -0.4, 0.7, 0.2));
        c.add(Gate::cnot(1, 2));
        c.add(Gate::t(0));
        c.add(Gate::cz(0, 2));
        c.add(Gate::rz(1, 0.8));
        c.add(Gate::cphase(1, 2, -0.5));
    }
    return c;
}

/** Widen a small-register circuit onto nq qubits (gates unchanged). */
Circuit
widened(const Circuit &c, int nq)
{
    Circuit wide(nq, c.name());
    for (const Gate &g : c.gates())
        wide.add(g);
    return wide;
}

TileRow
tileRow(int nq, int tile_bits, int reps)
{
    TileRow row;
    row.qubits = nq;
    row.tileBits = tile_bits;

    Circuit c = widened(tiledWorkload(), nq);
    FusionOptions untiled_opt;
    untiled_opt.tileQubits = 0;
    FusedProgram untiled(c, untiled_opt);
    FusionOptions tiled_opt;
    tiled_opt.tileQubits = tile_bits;
    FusedProgram tiled(c, tiled_opt);
    row.tileRuns = tiled.stats().tileRuns;
    row.tiledOps = tiled.stats().tiledOps;

    // Identity check (doubles as warm-up).
    StateVector a = initialState(nq);
    StateVector b = a;
    untiled.applyAll(a);
    tiled.applyAll(b);
    row.identical = bitIdentical(a, b);

    const FusedProgram *progs[2] = {&untiled, &tiled};
    double *mode_ms[2] = {&row.untiledMs, &row.tiledMs};
    StateVector sv = a;
    for (int rep = 0; rep < reps; ++rep)
        for (int k = 0; k < 2; ++k) {
            int m = (rep + k) % 2;
            auto t0 = Clock::now();
            progs[m]->applyAll(sv);
            double ms = msSince(t0);
            if (rep == 0 || ms < *mode_ms[m])
                *mode_ms[m] = ms;
        }
    return row;
}

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<int> qubit_list = {16, 20, 24, 28};
    int reps = 3;
    int tile_bits = 12;
    double tolerance = 0.90;
    double noise_floor_ms = 1.0;
    std::string json_file;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("micro_kernels: ", flag, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--qubits")) {
            qubit_list.clear();
            std::stringstream ss(need_value("--qubits"));
            std::string tok;
            while (std::getline(ss, tok, ','))
                qubit_list.push_back(std::atoi(tok.c_str()));
        } else if (!std::strcmp(argv[i], "--reps"))
            reps = std::atoi(need_value("--reps"));
        else if (!std::strcmp(argv[i], "--tile"))
            tile_bits = std::atoi(need_value("--tile"));
        else if (!std::strcmp(argv[i], "--tolerance"))
            tolerance = std::atof(need_value("--tolerance"));
        else if (!std::strcmp(argv[i], "--noise-floor-ms"))
            noise_floor_ms = std::atof(need_value("--noise-floor-ms"));
        else if (!std::strcmp(argv[i], "--json"))
            json_file = need_value("--json");
        else
            fatal("micro_kernels: unknown argument '", argv[i], "'");
    }
    if (reps < 1)
        fatal("micro_kernels: --reps must be >= 1");
    if (tile_bits < 6 || tile_bits > 24)
        fatal("micro_kernels: --tile must be in [6, 24]");
    for (int nq : qubit_list)
        if (nq < 8 || nq > StateVector::maxQubits())
            fatal("micro_kernels: qubit counts must be in [8, ",
                  StateVector::maxQubits(), "]");

    const int threads = std::max(2, ThreadPool::hardwareThreads());

    std::vector<KernelRow> krows;
    std::vector<int> krow_passes;
    for (int nq : qubit_list)
        for (const Family &fam : kFamilies) {
            krows.push_back(kernelRow(fam, nq, reps, threads));
            krow_passes.push_back(fam.passes);
        }

    std::vector<TileRow> trows;
    for (int nq : qubit_list)
        if (nq > tile_bits)
            trows.push_back(tileRow(nq, tile_bits, reps));

    bool identical = true;
    bool gate_ok = true;
    for (const KernelRow &r : krows) {
        identical = identical && r.identical;
        if (r.adaptivePlannedThreads > 1 &&
            r.adaptiveSpeedup() < tolerance &&
            r.adaptiveMs - r.serialMs > noise_floor_ms) {
            gate_ok = false;
            std::cerr << "micro_kernels: GATE " << r.family << "/"
                      << r.qubits << "q: adaptive_speedup "
                      << r.adaptiveSpeedup() << " < tolerance "
                      << tolerance
                      << " and the loss exceeds the noise floor (serial "
                      << r.serialMs << " ms, adaptive " << r.adaptiveMs
                      << " ms)\n";
        }
    }
    double best_tile_20q = 0.0;
    for (const TileRow &r : trows) {
        identical = identical && r.identical;
        if (r.qubits >= 20)
            best_tile_20q = std::max(best_tile_20q, r.speedup());
    }

    std::ostringstream json;
    json << "{\n"
         << "  \"hardware_threads\": " << ThreadPool::hardwareThreads()
         << ",\n"
         << "  \"forced_threads\": " << threads << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"tile_bits\": " << tile_bits << ",\n"
         << "  \"tolerance\": " << tolerance << ",\n"
         << "  \"noise_floor_ms\": " << noise_floor_ms << ",\n"
         << "  \"kernel_rows\": [\n";
    for (size_t i = 0; i < krows.size(); ++i) {
        const KernelRow &r = krows[i];
        int passes = krow_passes[i];
        json << "    {\"family\": \"" << r.family
             << "\", \"qubits\": " << r.qubits
             << ", \"passes\": " << passes
             << ", \"adaptive_planned_threads\": "
             << r.adaptivePlannedThreads
             << ", \"serial_ms\": " << r.serialMs
             << ", \"threaded_ms\": " << r.threadedMs
             << ", \"adaptive_ms\": " << r.adaptiveMs
             << ", \"serial_gb_per_sec\": "
             << r.gbPerSec(r.serialMs, passes)
             << ", \"adaptive_gb_per_sec\": "
             << r.gbPerSec(r.adaptiveMs, passes)
             << ", \"adaptive_speedup\": " << r.adaptiveSpeedup()
             << ", \"thread_speedup\": "
             << (r.threadedMs > 0.0 ? r.serialMs / r.threadedMs : 0.0)
             << ", \"identical\": " << (r.identical ? "true" : "false")
             << "}" << (i + 1 == krows.size() ? "\n" : ",\n");
    }
    json << "  ],\n"
         << "  \"tile_rows\": [\n";
    for (size_t i = 0; i < trows.size(); ++i) {
        const TileRow &r = trows[i];
        json << "    {\"qubits\": " << r.qubits
             << ", \"tile_bits\": " << r.tileBits
             << ", \"tile_runs\": " << r.tileRuns
             << ", \"tiled_ops\": " << r.tiledOps
             << ", \"untiled_ms\": " << r.untiledMs
             << ", \"tiled_ms\": " << r.tiledMs
             << ", \"tiling_speedup\": " << r.speedup()
             << ", \"identical\": " << (r.identical ? "true" : "false")
             << "}" << (i + 1 == trows.size() ? "\n" : ",\n");
    }
    json << "  ],\n"
         << "  \"best_tiling_speedup_20q_plus\": " << best_tile_20q
         << ",\n"
         << "  \"identical_across_modes\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"gate_pass\": " << (gate_ok ? "true" : "false") << "\n"
         << "}\n";

    std::cout << json.str();
    if (!json_file.empty()) {
        std::ofstream out(json_file);
        if (!out)
            fatal("micro_kernels: cannot write '", json_file, "'");
        out << json.str();
    }
    if (!identical)
        return 4;
    if (!gate_ok)
        return 6;
    return 0;
} catch (const FatalError &) {
    return 1;
}
