/**
 * @file
 * Mapper-search microbenchmark: runs the fig13 supremacy grid rows
 * through four mapping engines against the same reliability matrix and
 * emits BENCH_mapper.json so CI can hold the planner-grade search to
 * its contract — the new bound must shrink the proof tree on every
 * row, and warm starts must shrink it further.
 *
 * Engines per row (all max-min objective, readout included):
 *   - greedy:  constructive placement + local search (the anytime
 *     floor; zero search nodes);
 *   - legacy:  branch-and-bound with every planner feature off
 *     (useStrongBound/useSymmetry/useDominance = false) — the
 *     pre-planner search, static suffix potential only;
 *   - new:     the same search with the row-relaxation admissible
 *     bound, equivalence-class symmetry pruning and sibling-dominance
 *     cuts (the shipping defaults);
 *   - warm:    the new engine warm-started from the previous
 *     calibration day's optimum — the incremental-remapping path a
 *     drift invalidation takes in the sweep engine.
 *
 * Node counts are exact and deterministic: the searches run under a
 * node budget only (no wall-clock deadline), so the gates cannot flake
 * on machine load; --reps repetitions exist purely to take a
 * min-over-reps wall time per engine.
 *
 * The gates (exit 6 on failure):
 *   1. on rows the legacy engine can prove within the budget, the new
 *      engine must prove them with strictly fewer nodes (rows whose
 *      legacy proof is already below --node-floor nodes only need <=:
 *      there is nothing left to prune); on rows where *both* engines
 *      exhaust the budget the node counts saturate at budget+1 by
 *      construction, so the anytime value is compared instead
 *      (new >= legacy);
 *   2. warm_nodes <= new_nodes on every row, strictly fewer in total;
 *   3. at least one row that exhausts the legacy budget (falling back
 *      to the greedy incumbent, unproved) is proved optimal by the new
 *      engine within the same budget.
 * Exit 4 is a determinism/soundness breach: node counts or values
 * changed across reps, an exact engine returned a worse value than its
 * greedy seed, a warm-started search returned a worse value than the
 * cold search (the warm incumbent is never below the cold one, so
 * anytime dominance is a theorem), or two engines both proved
 * optimality at different values. Exit 0 otherwise.
 *
 * Usage:
 *   micro_mapper [--budget N] [--reps N] [--node-floor N] [--json FILE]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/decompose.hh"
#include "core/mapper.hh"
#include "core/reliability.hh"
#include "workloads/supremacy.hh"

using namespace triq;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** One engine's result on one row: min-over-reps wall time. */
struct EngineStat
{
    long nodes = 0;
    bool optimal = false;
    double value = 0.0; //!< Achieved max-min objective.
    double ms = 0.0;
    long boundPruned = 0;
    long symmetryPruned = 0;
    long dominancePruned = 0;
    bool deterministic = true; //!< Nodes/value identical across reps.
};

EngineStat
runEngine(const ProgramInfo &info, const ReliabilityMatrix &rel,
          const MappingOptions &opts, int reps)
{
    EngineStat s;
    for (int rep = 0; rep < reps; ++rep) {
        auto t0 = Clock::now();
        Mapping m = mapQubits(info, rel, opts);
        double ms = msSince(t0);
        if (rep == 0) {
            s.nodes = m.nodesExplored;
            s.optimal = m.optimal;
            s.value = m.minReliability;
            s.ms = ms;
        } else {
            if (ms < s.ms)
                s.ms = ms;
            if (m.nodesExplored != s.nodes || m.minReliability != s.value)
                s.deterministic = false;
        }
        s.boundPruned = m.boundPruned;
        s.symmetryPruned = m.symmetryPruned;
        s.dominancePruned = m.dominancePruned;
    }
    return s;
}

/** One fig13 grid row: all four engines on the same matrix. */
struct Row
{
    std::string name;
    int qubits = 0;
    int depth = 0;
    EngineStat greedy, legacy, fresh, warm;

    double
    nodeRatio() const
    {
        return fresh.nodes > 0
                   ? static_cast<double>(legacy.nodes) / fresh.nodes
                   : 0.0;
    }
};

void
emitEngine(std::ostringstream &json, const char *prefix,
           const EngineStat &s, bool with_prunes)
{
    json << ", \"" << prefix << "_nodes\": " << s.nodes << ", \""
         << prefix << "_optimal\": " << (s.optimal ? "true" : "false")
         << ", \"" << prefix << "_value\": " << s.value << ", \""
         << prefix << "_ms\": " << s.ms;
    if (with_prunes)
        json << ", \"" << prefix << "_bound_pruned\": " << s.boundPruned
             << ", \"" << prefix
             << "_symmetry_pruned\": " << s.symmetryPruned << ", \""
             << prefix << "_dominance_pruned\": " << s.dominancePruned;
}

void
emitRow(std::ostringstream &json, const Row &r, bool last)
{
    json << "    {\"name\": \"" << r.name
         << "\", \"qubits\": " << r.qubits << ", \"depth\": " << r.depth
         << ", \"greedy_value\": " << r.greedy.value
         << ", \"greedy_ms\": " << r.greedy.ms;
    emitEngine(json, "legacy", r.legacy, false);
    emitEngine(json, "new", r.fresh, true);
    emitEngine(json, "warm", r.warm, false);
    json << ", \"node_ratio\": " << r.nodeRatio() << "}"
         << (last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, char **argv)
try {
    long budget = 200000; // fig13's per-compile node budget
    int reps = 3;
    long node_floor = 64;
    std::string json_file;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("micro_mapper: ", flag, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--budget"))
            budget = std::atol(need_value("--budget"));
        else if (!std::strcmp(argv[i], "--reps"))
            reps = std::atoi(need_value("--reps"));
        else if (!std::strcmp(argv[i], "--node-floor"))
            node_floor = std::atol(need_value("--node-floor"));
        else if (!std::strcmp(argv[i], "--json"))
            json_file = need_value("--json");
        else
            fatal("micro_mapper: unknown argument '", argv[i], "'");
    }
    if (budget < 1 || reps < 1)
        fatal("micro_mapper: --budget and --reps must be >= 1");

    // The fig13 scalability ladder: square-ish grids with the IBMQ14
    // noise model, exactly the devices whose compile times the paper's
    // scalability study reports.
    struct Config
    {
        int rows, cols, depth;
    };
    const Config configs[] = {{2, 3, 16}, {3, 4, 24},  {4, 4, 32},
                              {4, 6, 48}, {6, 6, 64},  {6, 9, 96},
                              {6, 12, 128}};
    const NoiseSpec noise = bench::deviceByName("IBMQ14").noiseSpec();

    MappingOptions legacy_opts;
    legacy_opts.kind = MapperKind::BranchAndBound;
    legacy_opts.nodeBudget = budget;
    legacy_opts.useStrongBound = false;
    legacy_opts.useSymmetry = false;
    legacy_opts.useDominance = false;
    MappingOptions new_opts;
    new_opts.kind = MapperKind::BranchAndBound;
    new_opts.nodeBudget = budget;
    MappingOptions greedy_opts;
    greedy_opts.kind = MapperKind::Greedy;

    std::vector<Row> rows;
    for (const auto &cfg : configs) {
        int n = cfg.rows * cfg.cols;
        Device dev("Grid" + std::to_string(n),
                   Topology::grid(cfg.rows, cfg.cols), GateSet::ibm(),
                   noise);
        // The mapper's exact inputs at the noise-aware level: the
        // CNOT-basis interaction graph and the day's reliability
        // matrix (fig13 compiles against day 1).
        Circuit program =
            makeSupremacy(cfg.rows, cfg.cols, cfg.depth, 1);
        Circuit lowered =
            decomposeToCnotBasis(program, dev.gateSet().nativeCphase);
        ProgramInfo info = ProgramInfo::fromCircuit(lowered);
        Calibration today = dev.calibrate(1);
        ReliabilityMatrix rel(dev.topology(), today, dev.vendor());

        Row row;
        row.name = "Supremacy" + std::to_string(n) + "d" +
                   std::to_string(cfg.depth);
        row.qubits = n;
        row.depth = cfg.depth;
        row.greedy = runEngine(info, rel, greedy_opts, reps);
        row.legacy = runEngine(info, rel, legacy_opts, reps);
        row.fresh = runEngine(info, rel, new_opts, reps);

        // The drift-remap scenario: "yesterday" is a small
        // deterministic perturbation of today's error rates — the
        // few-percent day-to-day drift TRIQ_SWEEP_DRIFT guards
        // against. Yesterday's optimum (untimed cold solve) seeds
        // today's search, exactly what the sweep engine does when a
        // drift invalidation forces a recompile.
        Calibration prev_calib = today;
        Rng drift(1234 + static_cast<uint64_t>(n));
        for (auto &e : prev_calib.err2q)
            e *= drift.uniform(0.97, 1.03);
        for (auto &e : prev_calib.errRO)
            e *= drift.uniform(0.97, 1.03);
        ReliabilityMatrix rel_prev(dev.topology(), prev_calib,
                                   dev.vendor());
        Mapping prev = mapQubits(info, rel_prev, new_opts);
        MappingOptions warm_opts = new_opts;
        warm_opts.warmStart = prev.progToHw;
        warm_opts.warmStartOrigin = "drift(day 2)";
        row.warm = runEngine(info, rel, warm_opts, reps);

        rows.push_back(std::move(row));
    }

    // --- soundness / determinism checks (exit 4).
    const double eps = 1e-12;
    bool sound = true;
    auto breach = [&](const Row &r, const std::string &what) {
        sound = false;
        std::cerr << "micro_mapper: BREACH " << r.name << ": " << what
                  << "\n";
    };
    for (const Row &r : rows) {
        for (const EngineStat *s :
             {&r.greedy, &r.legacy, &r.fresh, &r.warm})
            if (!s->deterministic)
                breach(r, "node count or value changed across reps");
        // Cold exact engines seed from the greedy incumbent and accept
        // only strict improvements, so they can never come back worse.
        if (r.legacy.value + eps < r.greedy.value)
            breach(r, "legacy value below the greedy seed");
        if (r.fresh.value + eps < r.greedy.value)
            breach(r, "new-engine value below the greedy seed");
        // Sound pruning with identical child ordering: at any node
        // budget the new engine has seen every improving leaf the
        // legacy search has, so its anytime value cannot be worse.
        if (r.fresh.value + eps < r.legacy.value)
            breach(r, "new-engine value below the legacy value");
        // Same argument, warm vs. cold: the warm incumbent starts at
        // least as high (the engine keeps the better of the warm and
        // greedy seeds), so the warm anytime value cannot be worse.
        if (r.warm.value + eps < r.fresh.value)
            breach(r, "warm-start value below the cold value");
        // Two proofs of optimality must agree on the optimum.
        if (r.legacy.optimal && r.fresh.optimal &&
            std::abs(r.legacy.value - r.fresh.value) > eps)
            breach(r, "legacy and new both optimal at different values");
        if (r.warm.optimal && r.fresh.optimal &&
            std::abs(r.warm.value - r.fresh.value) > eps)
            breach(r, "warm and cold both optimal at different values");
    }

    // --- the perf gates (exit 6).
    bool gate_ok = true;
    auto gate = [&](const Row &r, const std::string &what) {
        gate_ok = false;
        std::cerr << "micro_mapper: GATE " << r.name << ": " << what
                  << "\n";
    };
    long legacy_total = 0, new_total = 0, warm_total = 0;
    int undegraded = 0;
    for (const Row &r : rows) {
        legacy_total += r.legacy.nodes;
        new_total += r.fresh.nodes;
        warm_total += r.warm.nodes;
        // 1. The stronger bound must shrink the proof tree on every
        //    row; tiny proofs (below the floor) only need to not grow.
        //    When both engines exhaust the budget the node counts
        //    saturate (budget+1 each) and carry no signal — the
        //    anytime-value comparison in the soundness block is the
        //    contract there.
        bool saturated = !r.legacy.optimal && !r.fresh.optimal;
        bool shrank = r.fresh.nodes < r.legacy.nodes ||
                      (r.legacy.nodes <= node_floor &&
                       r.fresh.nodes <= r.legacy.nodes);
        if (!saturated && !shrank)
            gate(r, "new engine explored " +
                        std::to_string(r.fresh.nodes) +
                        " nodes, legacy " +
                        std::to_string(r.legacy.nodes));
        // 2. A warm incumbent can only tighten pruning further.
        if (r.warm.nodes > r.fresh.nodes)
            gate(r, "warm start explored " +
                        std::to_string(r.warm.nodes) +
                        " nodes, cold " + std::to_string(r.fresh.nodes));
        if (!r.legacy.optimal && r.fresh.optimal)
            ++undegraded;
    }
    if (warm_total >= new_total && new_total > 0) {
        gate_ok = false;
        std::cerr << "micro_mapper: GATE warm starts explored "
                  << warm_total << " total nodes, cold " << new_total
                  << "\n";
    }
    // 3. The headline claim: a budget the legacy search exhausts
    //    (returning the unproved greedy incumbent) now suffices for a
    //    proof on at least one supremacy row. Only meaningful at the
    //    default fig13 budget and up — the 16-qubit proof takes ~187k
    //    nodes, so a deliberately shrunk --budget cannot satisfy it
    //    and should not read as a regression.
    if (undegraded == 0 && budget >= 200000) {
        gate_ok = false;
        std::cerr << "micro_mapper: GATE no row went from "
                     "legacy-budget-exhausted to proved-optimal\n";
    }

    std::ostringstream json;
    json << "{\n"
         << "  \"budget\": " << budget << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"node_floor\": " << node_floor << ",\n"
         << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i)
        emitRow(json, rows[i], i + 1 == rows.size());
    json << "  ],\n"
         << "  \"legacy_total_nodes\": " << legacy_total << ",\n"
         << "  \"new_total_nodes\": " << new_total << ",\n"
         << "  \"warm_total_nodes\": " << warm_total << ",\n"
         << "  \"rows_undegraded\": " << undegraded << ",\n"
         << "  \"sound\": " << (sound ? "true" : "false") << ",\n"
         << "  \"gate_pass\": " << (gate_ok ? "true" : "false") << "\n"
         << "}\n";

    std::cout << json.str();
    if (!json_file.empty()) {
        std::ofstream out(json_file);
        if (!out)
            fatal("micro_mapper: cannot write '", json_file, "'");
        out << json.str();
    }
    if (!sound)
        return 4;
    if (!gate_ok)
        return 6;
    return 0;
} catch (const FatalError &) {
    return 1;
}
