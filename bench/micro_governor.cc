/**
 * @file
 * Resource-governor microbenchmark: measures the two overheads the
 * governor adds to hot paths and emits BENCH_governor.json.
 *
 *   admission   checkAdmission() latency — the predicate triqd runs
 *               on every simulate request before queueing it. Target:
 *               < 50 us mean (it is a handful of arithmetic ops plus
 *               one SchedCalib estimate; anything slower would show up
 *               on every request the daemon serves).
 *
 *   journal     wall-clock overhead of `--journal` on a sweep — the
 *               same grid run with and without the fsync'd JSONL
 *               journal. Target: < 2% (one write(2) + fdatasync per
 *               cell, amortized against a full compile pipeline).
 *
 * The process exits 4 when the admission mean exceeds a lenient 10x
 * gate (500 us) — the targets themselves are reported as booleans in
 * the JSON so CI trends can flag soft regressions without making the
 * suite flaky on slow or throttled runners.
 *
 * Usage:
 *   micro_governor [--iters N] [--days N] [--reps N] [--json FILE]
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "device/machines.hh"
#include "service/cost_model.hh"
#include "service/sweep.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

double
sweepMs(const SweepConfig &cfg)
{
    CompileCache cache;
    auto t0 = std::chrono::steady_clock::now();
    runSweep(cfg, &cache);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
try {
    int iters = 20000;
    int days = 2;
    int reps = 3;
    std::string json_file;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("micro_governor: ", flag, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--iters"))
            iters = std::atoi(need_value("--iters"));
        else if (!std::strcmp(argv[i], "--days"))
            days = std::atoi(need_value("--days"));
        else if (!std::strcmp(argv[i], "--reps"))
            reps = std::atoi(need_value("--reps"));
        else if (!std::strcmp(argv[i], "--json"))
            json_file = need_value("--json");
        else
            fatal("micro_governor: unknown argument '", argv[i], "'");
    }
    if (iters < 1 || days < 1 || reps < 1)
        fatal("micro_governor: --iters, --days and --reps must be >= 1");

    // --- admission latency: the per-request predicate, over the mix a
    // daemon actually sees (small fits, wide rejects, compile-only).
    struct Probe
    {
        int qubits, workers, gates2q, gates;
        bool simulate;
    };
    const Probe probes[] = {
        {5, 1, 10, 60, true},    // small simulate — always fits
        {14, 4, 40, 200, true},  // mid-size threaded simulate
        {72, 1, 500, 2000, true}, // fig13-wide — rejects under a budget
        {16, 1, 80, 400, false}, // compile-only — memory exempt
    };
    volatile uint64_t sink = 0; // keep the verdicts from being elided
    // Warm the SchedCalib path once so the measurement is steady-state.
    sink = sink + checkAdmission(5, 1, 10, 60, 0.0, true).predictedBytes;

    std::vector<double> us;
    us.reserve(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
        const Probe &p = probes[static_cast<size_t>(i) % 4];
        auto t0 = std::chrono::steady_clock::now();
        AdmissionVerdict v = checkAdmission(p.qubits, p.workers,
                                            p.gates2q, p.gates, 0.0,
                                            p.simulate);
        auto t1 = std::chrono::steady_clock::now();
        sink = sink + v.predictedBytes;
        us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    std::sort(us.begin(), us.end());
    double mean_us = 0.0;
    for (double u : us)
        mean_us += u;
    mean_us /= static_cast<double>(us.size());
    double p99_us = us[static_cast<size_t>(
        0.99 * static_cast<double>(us.size() - 1))];

    // --- journal overhead: the same grid with and without --journal.
    // The cells are fig13-style supremacy circuits on the 72-qubit
    // machine — the hours-long-sweep regime journaling exists for,
    // where one fsync'd record amortizes against a real compile. (On
    // the paper's small benchmarks a cell costs tens of microseconds
    // and the fsync dominates; nobody needs crash recovery there.)
    SweepConfig cfg;
    cfg.programs.push_back({"Sup3x4d8", makeBenchmark("Sup3x4d8")});
    cfg.programs.push_back({"Sup4x4d8", makeBenchmark("Sup4x4d8")});
    cfg.devices.push_back(makeGoogle72());
    for (int d = 0; d < days; ++d)
        cfg.days.push_back(d);
    cfg.levels = {OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.threads = 1;        // serial: no pool noise in the comparison
    cfg.useCache = false;   // cold every rep: maximal per-cell work
    cfg.driftThreshold = -1.0;

    char journal_dir[] = "/tmp/triq_governor_XXXXXX";
    if (!mkdtemp(journal_dir))
        fatal("micro_governor: mkdtemp failed");
    std::string journal_path = std::string(journal_dir) + "/cells.jsonl";

    double plain_ms = sweepMs(cfg);
    SweepConfig journaled = cfg;
    journaled.journalPath = journal_path;
    double journal_ms = sweepMs(journaled);
    for (int rep = 1; rep < reps; ++rep) {
        plain_ms = std::min(plain_ms, sweepMs(cfg));
        journal_ms = std::min(journal_ms, sweepMs(journaled));
    }
    long cells = 0;
    {
        std::ifstream in(journal_path);
        std::string line;
        while (std::getline(in, line))
            ++cells;
    }
    unlink(journal_path.c_str());
    rmdir(journal_dir);

    double overhead =
        plain_ms > 0.0 ? (journal_ms - plain_ms) / plain_ms : 0.0;
    double per_record_us =
        cells > 0 ? (journal_ms - plain_ms) * 1000.0 /
                        static_cast<double>(cells)
                  : 0.0;

    std::ostringstream json;
    json << "{\n"
         << "  \"admission\": {\"iters\": " << iters
         << ", \"mean_us\": " << mean_us << ", \"p99_us\": " << p99_us
         << ", \"target_us\": 50, \"meets_target\": "
         << (mean_us < 50.0 ? "true" : "false") << "},\n"
         << "  \"journal\": {\"days\": " << days << ", \"reps\": " << reps
         << ", \"plain_ms\": " << plain_ms << ", \"journal_ms\": "
         << journal_ms << ", \"records\": " << cells
         << ", \"per_record_us\": " << per_record_us
         << ", \"overhead\": " << overhead
         << ", \"target_overhead\": 0.02, \"meets_target\": "
         << (overhead < 0.02 ? "true" : "false") << "}\n"
         << "}\n";

    std::cout << json.str();
    if (!json_file.empty()) {
        std::ofstream out(json_file);
        if (!out)
            fatal("micro_governor: cannot write '", json_file, "'");
        out << json.str();
    }
    // Hard gate only at 10x the admission target: the check must stay
    // cheap enough to run on every request, but CI runners jitter.
    if (mean_us > 500.0)
        return 4;
    return 0;
} catch (const FatalError &) {
    return 1;
}
