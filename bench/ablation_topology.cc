/**
 * @file
 * Communication-topology what-if (Sec. 7): "machines with richer qubit
 * connectivity allow a wider variety of programs to execute
 * successfully." Here the same 8 qubits with identical error statistics
 * are wired as a line, a ring, a 2x4 grid and a complete graph; every
 * benchmark that fits is compiled noise-aware and executed. Topology is
 * the only variable.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    const int trials = defaultTrials();
    const int day = bench::defaultDay();

    // Uniform error rates (no spatial/temporal spread): the comparison
    // must isolate topology, not which edges happened to be good.
    NoiseSpec spec = bench::deviceByName("IBMQ14").noiseSpec();
    spec.spatialSigma = 0.0;
    spec.temporalSigma = 0.0;
    struct Variant
    {
        const char *name;
        Topology topo;
    };
    Variant variants[] = {
        {"line", Topology::line(8, true)},
        {"ring", Topology::ring(8, true)},
        {"grid2x4", Topology::grid(2, 4, true)},
        {"full", Topology::full(8)},
    };

    Table tab("Sec. 7 what-if: same 8 qubits / same errors, different "
              "topology (" +
              std::to_string(trials) + " trials, TriQ-1QOptCN)");
    tab.setHeader({"benchmark", "line 2Q", "ring 2Q", "grid 2Q",
                   "full 2Q", "line", "ring", "grid", "full"});
    std::vector<std::vector<double>> succ(4);
    for (const std::string &name : benchmarkNames()) {
        Circuit program = makeBenchmark(name);
        if (program.numQubits() > 8)
            continue;
        std::vector<std::string> counts, rates;
        for (size_t v = 0; v < 4; ++v) {
            // IBM gate set needs directed edges; the complete graph is
            // treated as an undirected CZ-style target.
            GateSet gs = variants[v].topo.fullyConnected()
                             ? GateSet::rigetti()
                             : GateSet::ibm();
            Device dev(std::string("Topo-") + variants[v].name,
                       variants[v].topo, gs, spec);
            auto pt = bench::runTriq(program, dev, OptLevel::OneQOptCN,
                                     day, trials);
            counts.push_back(fmtI(pt.compiled.stats.twoQ));
            rates.push_back(bench::successCell(pt.executed));
            succ[v].push_back(pt.executed.successRate);
        }
        tab.addRow({name, counts[0], counts[1], counts[2], counts[3],
                    rates[0], rates[1], rates[2], rates[3]});
    }
    tab.print(std::cout);
    std::cout << "\nmean success: line " << fmtF(mean(succ[0]), 3)
              << ", ring " << fmtF(mean(succ[1]), 3) << ", grid "
              << fmtF(mean(succ[2]), 3) << ", full "
              << fmtF(mean(succ[3]), 3)
              << "\nricher connectivity -> fewer swaps -> higher "
                 "success, the Sec. 7 ordering\n";
    return 0;
}
