/**
 * @file
 * Fusion + dedup microbenchmark: runs the fig07 benchmark set through
 * executeNoisy in four configurations — PR-1 baseline (fusion and
 * dedup off), fusion only, dedup only, and both — plus a threaded
 * both-on run, and emits BENCH_sim_fusion.json with per-benchmark and
 * aggregate wall-clock, speedups and histogram-identity flags.
 *
 * The run doubles as an acceptance check: every configuration must
 * reproduce the baseline's histogram exactly (dedup is bit-identical
 * by construction; fusion empirically — see DESIGN.md), and the
 * process exits 4 when any benchmark disagrees.
 *
 * Usage:
 *   micro_fusion [--device NAME] [--trials N] [--threads N] [--reps N]
 *                [--bench NAME]... [--json FILE]
 *
 * Each configuration runs --reps times (default 3) and reports the
 * fastest repetition, so one cold-cache or descheduled run does not
 * skew the speedup ratios. The engines are deterministic, so every
 * repetition produces the same histogram.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

double
runMs(const Circuit &hw, const Device &dev, const Calibration &calib,
      int trials, const ExecOptions &opts, ExecutionResult *out)
{
    auto t0 = std::chrono::steady_clock::now();
    ExecutionResult r = executeNoisy(hw, dev, calib, trials, 12345, opts);
    auto t1 = std::chrono::steady_clock::now();
    if (out)
        *out = std::move(r);
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct ConfigTotals
{
    double ms = 0.0;
    bool identical = true;
};

} // namespace

int
main(int argc, char **argv)
try {
    std::string device_name = "IBMQ14";
    std::string json_file;
    std::vector<std::string> bench_names;
    int trials = defaultTrials(1000);
    int threads = std::max(2, ThreadPool::hardwareThreads());
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("micro_fusion: ", flag, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--device"))
            device_name = need_value("--device");
        else if (!std::strcmp(argv[i], "--bench"))
            bench_names.push_back(need_value("--bench"));
        else if (!std::strcmp(argv[i], "--trials"))
            trials = std::atoi(need_value("--trials"));
        else if (!std::strcmp(argv[i], "--threads"))
            threads = std::atoi(need_value("--threads"));
        else if (!std::strcmp(argv[i], "--reps"))
            reps = std::atoi(need_value("--reps"));
        else if (!std::strcmp(argv[i], "--json"))
            json_file = need_value("--json");
        else
            fatal("micro_fusion: unknown argument '", argv[i], "'");
    }
    if (trials < 1 || threads < 1 || reps < 1)
        fatal("micro_fusion: --trials, --threads and --reps must be "
              ">= 1");
    if (bench_names.empty())
        bench_names = benchmarkNames(); // the fig07 set

    Device dev = bench::deviceByName(device_name);
    int day = bench::defaultDay();
    Calibration calib = dev.calibrate(day);

    // The five measured configurations. "baseline" reproduces the PR-1
    // engine exactly: per-trial replay, no fusion.
    struct Config
    {
        const char *name;
        int fusion;
        int dedup;
        int threads;
    };
    const Config configs[] = {
        {"baseline", -1, -1, 1},     {"fusion_only", 1, -1, 1},
        {"dedup_only", -1, 1, 1},    {"fusion_dedup", 1, 1, 1},
        {"fusion_dedup_threaded", 1, 1, threads},
    };
    constexpr size_t kNumConfigs = sizeof(configs) / sizeof(configs[0]);

    ConfigTotals totals[kNumConfigs];
    std::ostringstream rows;
    bool all_identical = true;

    for (size_t bi = 0; bi < bench_names.size(); ++bi) {
        const std::string &name = bench_names[bi];
        Circuit program = makeBenchmark(name);
        CompileOptions copts;
        copts.emitAssembly = false;
        CompileResult compiled =
            compileForDevice(program, dev, calib, copts);

        double ms[kNumConfigs];
        ExecutionResult res[kNumConfigs];
        for (size_t ci = 0; ci < kNumConfigs; ++ci) {
            ExecOptions opts;
            opts.fusion = configs[ci].fusion;
            opts.dedup = configs[ci].dedup;
            opts.threads = configs[ci].threads;
            ms[ci] = runMs(compiled.hwCircuit, dev, calib, trials, opts,
                           &res[ci]);
            for (int rep = 1; rep < reps; ++rep)
                ms[ci] = std::min(
                    ms[ci], runMs(compiled.hwCircuit, dev, calib, trials,
                                  opts, nullptr));
            totals[ci].ms += ms[ci];
            bool same = res[ci].histogram == res[0].histogram &&
                        res[ci].successRate == res[0].successRate;
            totals[ci].identical = totals[ci].identical && same;
            all_identical = all_identical && same;
        }

        rows << "    {\n"
             << "      \"benchmark\": \"" << name << "\",\n"
             << "      \"baseline_ms\": " << ms[0] << ",\n"
             << "      \"fusion_only_ms\": " << ms[1] << ",\n"
             << "      \"dedup_only_ms\": " << ms[2] << ",\n"
             << "      \"fusion_dedup_ms\": " << ms[3] << ",\n"
             << "      \"fusion_dedup_threaded_ms\": " << ms[4] << ",\n"
             << "      \"speedup\": "
             << (ms[3] > 0.0 ? ms[0] / ms[3] : 0.0) << ",\n"
             << "      \"faulty_trials\": "
             << res[0].simulatedTrajectories << ",\n"
             << "      \"distinct_patterns\": "
             << res[3].simulatedTrajectories << ",\n"
             << "      \"histograms_identical\": "
             << (totals[1].identical && totals[2].identical &&
                         totals[3].identical && totals[4].identical
                     ? "true"
                     : "false")
             << "\n"
             << "    }" << (bi + 1 < bench_names.size() ? "," : "")
             << "\n";
    }

    auto speedup = [&](size_t ci) {
        return totals[ci].ms > 0.0 ? totals[0].ms / totals[ci].ms : 0.0;
    };
    std::ostringstream json;
    json << "{\n"
         << "  \"device\": \"" << device_name << "\",\n"
         << "  \"day\": " << day << ",\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"benchmarks\": [\n"
         << rows.str() << "  ],\n"
         << "  \"total_baseline_ms\": " << totals[0].ms << ",\n"
         << "  \"total_fusion_only_ms\": " << totals[1].ms << ",\n"
         << "  \"total_dedup_only_ms\": " << totals[2].ms << ",\n"
         << "  \"total_fusion_dedup_ms\": " << totals[3].ms << ",\n"
         << "  \"total_fusion_dedup_threaded_ms\": " << totals[4].ms
         << ",\n"
         << "  \"fusion_only_speedup\": " << speedup(1) << ",\n"
         << "  \"dedup_only_speedup\": " << speedup(2) << ",\n"
         << "  \"fusion_dedup_speedup\": " << speedup(3) << ",\n"
         << "  \"fusion_dedup_threaded_speedup\": " << speedup(4)
         << ",\n"
         << "  \"identical_across_configs\": "
         << (all_identical ? "true" : "false") << "\n"
         << "}\n";

    std::cout << json.str();
    if (!json_file.empty()) {
        std::ofstream out(json_file);
        if (!out)
            fatal("micro_fusion: cannot write '", json_file, "'");
        out << json.str();
    }
    return all_identical ? 0 : 4;
} catch (const FatalError &) {
    return 1;
}
