file(REMOVE_RECURSE
  "CMakeFiles/test_variational.dir/test_variational.cc.o"
  "CMakeFiles/test_variational.dir/test_variational.cc.o.d"
  "test_variational"
  "test_variational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
