file(REMOVE_RECURSE
  "CMakeFiles/test_esp.dir/test_esp.cc.o"
  "CMakeFiles/test_esp.dir/test_esp.cc.o.d"
  "test_esp"
  "test_esp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
