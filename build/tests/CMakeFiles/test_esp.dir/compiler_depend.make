# Empty compiler generated dependencies file for test_esp.
# This may be replaced when dependencies are built.
