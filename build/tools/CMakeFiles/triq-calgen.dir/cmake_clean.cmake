file(REMOVE_RECURSE
  "CMakeFiles/triq-calgen.dir/triq_calgen.cc.o"
  "CMakeFiles/triq-calgen.dir/triq_calgen.cc.o.d"
  "triq-calgen"
  "triq-calgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-calgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
