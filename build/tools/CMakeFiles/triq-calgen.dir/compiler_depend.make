# Empty compiler generated dependencies file for triq-calgen.
# This may be replaced when dependencies are built.
