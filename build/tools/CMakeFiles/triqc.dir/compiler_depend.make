# Empty compiler generated dependencies file for triqc.
# This may be replaced when dependencies are built.
