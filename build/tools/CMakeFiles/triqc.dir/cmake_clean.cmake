file(REMOVE_RECURSE
  "CMakeFiles/triqc.dir/triqc.cc.o"
  "CMakeFiles/triqc.dir/triqc.cc.o.d"
  "triqc"
  "triqc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
