# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_triqc_bench "/root/repo/build/tools/triqc" "--bench" "BV4" "-d" "IBMQ5" "--verify" "-o" "/dev/null")
set_tests_properties(cli_triqc_bench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_triqc_scaff "/root/repo/build/tools/triqc" "/root/repo/examples/programs/qft.scaff" "-d" "UMDTI" "--verify" "-o" "/dev/null")
set_tests_properties(cli_triqc_scaff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_triqc_list "/root/repo/build/tools/triqc" "--list-devices")
set_tests_properties(cli_triqc_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_calgen_roundtrip "sh" "-c" "/root/repo/build/tools/triq-calgen -d IBMQ14 --day 7 -o cal14.txt &&           /root/repo/build/tools/triqc --bench Toffoli -d IBMQ14               --calibration cal14.txt --verify -o /dev/null")
set_tests_properties(cli_calgen_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
