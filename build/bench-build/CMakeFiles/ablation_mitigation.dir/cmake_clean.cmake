file(REMOVE_RECURSE
  "../bench/ablation_mitigation"
  "../bench/ablation_mitigation.pdb"
  "CMakeFiles/ablation_mitigation.dir/ablation_mitigation.cc.o"
  "CMakeFiles/ablation_mitigation.dir/ablation_mitigation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
