# Empty dependencies file for fig15_related_zulehner.
# This may be replaced when dependencies are built.
