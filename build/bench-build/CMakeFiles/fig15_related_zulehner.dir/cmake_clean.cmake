file(REMOVE_RECURSE
  "../bench/fig15_related_zulehner"
  "../bench/fig15_related_zulehner.pdb"
  "CMakeFiles/fig15_related_zulehner.dir/fig15_related_zulehner.cc.o"
  "CMakeFiles/fig15_related_zulehner.dir/fig15_related_zulehner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_related_zulehner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
