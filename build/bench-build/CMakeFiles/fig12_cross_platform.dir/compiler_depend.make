# Empty compiler generated dependencies file for fig12_cross_platform.
# This may be replaced when dependencies are built.
