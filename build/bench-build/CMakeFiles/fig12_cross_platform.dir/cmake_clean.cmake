file(REMOVE_RECURSE
  "../bench/fig12_cross_platform"
  "../bench/fig12_cross_platform.pdb"
  "CMakeFiles/fig12_cross_platform.dir/fig12_cross_platform.cc.o"
  "CMakeFiles/fig12_cross_platform.dir/fig12_cross_platform.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cross_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
