# Empty dependencies file for fig10_comm_opt.
# This may be replaced when dependencies are built.
