file(REMOVE_RECURSE
  "../bench/fig10_comm_opt"
  "../bench/fig10_comm_opt.pdb"
  "CMakeFiles/fig10_comm_opt.dir/fig10_comm_opt.cc.o"
  "CMakeFiles/fig10_comm_opt.dir/fig10_comm_opt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_comm_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
