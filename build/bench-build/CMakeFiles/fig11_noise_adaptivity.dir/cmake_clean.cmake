file(REMOVE_RECURSE
  "../bench/fig11_noise_adaptivity"
  "../bench/fig11_noise_adaptivity.pdb"
  "CMakeFiles/fig11_noise_adaptivity.dir/fig11_noise_adaptivity.cc.o"
  "CMakeFiles/fig11_noise_adaptivity.dir/fig11_noise_adaptivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_noise_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
