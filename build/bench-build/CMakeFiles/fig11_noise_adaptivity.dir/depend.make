# Empty dependencies file for fig11_noise_adaptivity.
# This may be replaced when dependencies are built.
