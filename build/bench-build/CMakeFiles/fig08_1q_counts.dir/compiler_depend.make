# Empty compiler generated dependencies file for fig08_1q_counts.
# This may be replaced when dependencies are built.
