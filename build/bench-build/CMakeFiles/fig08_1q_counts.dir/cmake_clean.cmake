file(REMOVE_RECURSE
  "../bench/fig08_1q_counts"
  "../bench/fig08_1q_counts.pdb"
  "CMakeFiles/fig08_1q_counts.dir/fig08_1q_counts.cc.o"
  "CMakeFiles/fig08_1q_counts.dir/fig08_1q_counts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_1q_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
