file(REMOVE_RECURSE
  "../bench/ablation_duration"
  "../bench/ablation_duration.pdb"
  "CMakeFiles/ablation_duration.dir/ablation_duration.cc.o"
  "CMakeFiles/ablation_duration.dir/ablation_duration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
