file(REMOVE_RECURSE
  "../bench/ablation_mapper"
  "../bench/ablation_mapper.pdb"
  "CMakeFiles/ablation_mapper.dir/ablation_mapper.cc.o"
  "CMakeFiles/ablation_mapper.dir/ablation_mapper.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
