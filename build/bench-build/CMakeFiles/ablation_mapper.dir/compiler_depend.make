# Empty compiler generated dependencies file for ablation_mapper.
# This may be replaced when dependencies are built.
