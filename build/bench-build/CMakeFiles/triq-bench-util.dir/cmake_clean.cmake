file(REMOVE_RECURSE
  "CMakeFiles/triq-bench-util.dir/bench_util.cc.o"
  "CMakeFiles/triq-bench-util.dir/bench_util.cc.o.d"
  "libtriq-bench-util.a"
  "libtriq-bench-util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-bench-util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
