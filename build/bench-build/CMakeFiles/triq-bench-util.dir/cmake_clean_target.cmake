file(REMOVE_RECURSE
  "libtriq-bench-util.a"
)
