# Empty dependencies file for triq-bench-util.
# This may be replaced when dependencies are built.
