file(REMOVE_RECURSE
  "../bench/fig13_scalability"
  "../bench/fig13_scalability.pdb"
  "CMakeFiles/fig13_scalability.dir/fig13_scalability.cc.o"
  "CMakeFiles/fig13_scalability.dir/fig13_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
