# Empty dependencies file for fig07_benchmarks.
# This may be replaced when dependencies are built.
