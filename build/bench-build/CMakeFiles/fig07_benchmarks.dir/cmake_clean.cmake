file(REMOVE_RECURSE
  "../bench/fig07_benchmarks"
  "../bench/fig07_benchmarks.pdb"
  "CMakeFiles/fig07_benchmarks.dir/fig07_benchmarks.cc.o"
  "CMakeFiles/fig07_benchmarks.dir/fig07_benchmarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
