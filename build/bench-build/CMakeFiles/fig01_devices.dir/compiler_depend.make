# Empty compiler generated dependencies file for fig01_devices.
# This may be replaced when dependencies are built.
