file(REMOVE_RECURSE
  "../bench/fig01_devices"
  "../bench/fig01_devices.pdb"
  "CMakeFiles/fig01_devices.dir/fig01_devices.cc.o"
  "CMakeFiles/fig01_devices.dir/fig01_devices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
