# Empty compiler generated dependencies file for fig14_related_bv4.
# This may be replaced when dependencies are built.
