file(REMOVE_RECURSE
  "../bench/fig14_related_bv4"
  "../bench/fig14_related_bv4.pdb"
  "CMakeFiles/fig14_related_bv4.dir/fig14_related_bv4.cc.o"
  "CMakeFiles/fig14_related_bv4.dir/fig14_related_bv4.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_related_bv4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
