file(REMOVE_RECURSE
  "../bench/fig03_daily_variation"
  "../bench/fig03_daily_variation.pdb"
  "CMakeFiles/fig03_daily_variation.dir/fig03_daily_variation.cc.o"
  "CMakeFiles/fig03_daily_variation.dir/fig03_daily_variation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_daily_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
