# Empty dependencies file for fig09_1q_success.
# This may be replaced when dependencies are built.
