file(REMOVE_RECURSE
  "../bench/fig09_1q_success"
  "../bench/fig09_1q_success.pdb"
  "CMakeFiles/fig09_1q_success.dir/fig09_1q_success.cc.o"
  "CMakeFiles/fig09_1q_success.dir/fig09_1q_success.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_1q_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
