file(REMOVE_RECURSE
  "../bench/fig06_reliability_matrix"
  "../bench/fig06_reliability_matrix.pdb"
  "CMakeFiles/fig06_reliability_matrix.dir/fig06_reliability_matrix.cc.o"
  "CMakeFiles/fig06_reliability_matrix.dir/fig06_reliability_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_reliability_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
