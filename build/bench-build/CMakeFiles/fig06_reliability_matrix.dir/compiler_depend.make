# Empty compiler generated dependencies file for fig06_reliability_matrix.
# This may be replaced when dependencies are built.
