# Empty compiler generated dependencies file for fig05_ir_dump.
# This may be replaced when dependencies are built.
