file(REMOVE_RECURSE
  "../bench/fig05_ir_dump"
  "../bench/fig05_ir_dump.pdb"
  "CMakeFiles/fig05_ir_dump.dir/fig05_ir_dump.cc.o"
  "CMakeFiles/fig05_ir_dump.dir/fig05_ir_dump.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ir_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
