file(REMOVE_RECURSE
  "../bench/ablation_routing"
  "../bench/ablation_routing.pdb"
  "CMakeFiles/ablation_routing.dir/ablation_routing.cc.o"
  "CMakeFiles/ablation_routing.dir/ablation_routing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
