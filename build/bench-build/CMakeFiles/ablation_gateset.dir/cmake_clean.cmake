file(REMOVE_RECURSE
  "../bench/ablation_gateset"
  "../bench/ablation_gateset.pdb"
  "CMakeFiles/ablation_gateset.dir/ablation_gateset.cc.o"
  "CMakeFiles/ablation_gateset.dir/ablation_gateset.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gateset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
