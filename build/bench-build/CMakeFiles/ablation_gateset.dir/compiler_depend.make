# Empty compiler generated dependencies file for ablation_gateset.
# This may be replaced when dependencies are built.
