file(REMOVE_RECURSE
  "../bench/micro_passes"
  "../bench/micro_passes.pdb"
  "CMakeFiles/micro_passes.dir/micro_passes.cc.o"
  "CMakeFiles/micro_passes.dir/micro_passes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
