file(REMOVE_RECURSE
  "CMakeFiles/supremacy_compile.dir/supremacy_compile.cpp.o"
  "CMakeFiles/supremacy_compile.dir/supremacy_compile.cpp.o.d"
  "supremacy_compile"
  "supremacy_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremacy_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
