# Empty dependencies file for supremacy_compile.
# This may be replaced when dependencies are built.
