file(REMOVE_RECURSE
  "CMakeFiles/cross_platform.dir/cross_platform.cpp.o"
  "CMakeFiles/cross_platform.dir/cross_platform.cpp.o.d"
  "cross_platform"
  "cross_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
