# Empty compiler generated dependencies file for noise_adaptive_recompile.
# This may be replaced when dependencies are built.
