file(REMOVE_RECURSE
  "CMakeFiles/noise_adaptive_recompile.dir/noise_adaptive_recompile.cpp.o"
  "CMakeFiles/noise_adaptive_recompile.dir/noise_adaptive_recompile.cpp.o.d"
  "noise_adaptive_recompile"
  "noise_adaptive_recompile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_adaptive_recompile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
