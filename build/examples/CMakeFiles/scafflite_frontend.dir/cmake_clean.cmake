file(REMOVE_RECURSE
  "CMakeFiles/scafflite_frontend.dir/scafflite_frontend.cpp.o"
  "CMakeFiles/scafflite_frontend.dir/scafflite_frontend.cpp.o.d"
  "scafflite_frontend"
  "scafflite_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scafflite_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
