# Empty compiler generated dependencies file for scafflite_frontend.
# This may be replaced when dependencies are built.
