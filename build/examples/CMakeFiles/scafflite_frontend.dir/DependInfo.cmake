
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scafflite_frontend.cpp" "examples/CMakeFiles/scafflite_frontend.dir/scafflite_frontend.cpp.o" "gcc" "examples/CMakeFiles/scafflite_frontend.dir/scafflite_frontend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/triq-lang.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/triq-workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/triq-baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/triq-sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/triq-core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/triq-device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/triq-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
