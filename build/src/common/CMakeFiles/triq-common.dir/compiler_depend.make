# Empty compiler generated dependencies file for triq-common.
# This may be replaced when dependencies are built.
