file(REMOVE_RECURSE
  "CMakeFiles/triq-common.dir/logging.cc.o"
  "CMakeFiles/triq-common.dir/logging.cc.o.d"
  "CMakeFiles/triq-common.dir/matrix.cc.o"
  "CMakeFiles/triq-common.dir/matrix.cc.o.d"
  "CMakeFiles/triq-common.dir/rng.cc.o"
  "CMakeFiles/triq-common.dir/rng.cc.o.d"
  "CMakeFiles/triq-common.dir/stats.cc.o"
  "CMakeFiles/triq-common.dir/stats.cc.o.d"
  "CMakeFiles/triq-common.dir/table.cc.o"
  "CMakeFiles/triq-common.dir/table.cc.o.d"
  "CMakeFiles/triq-common.dir/types.cc.o"
  "CMakeFiles/triq-common.dir/types.cc.o.d"
  "libtriq-common.a"
  "libtriq-common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
