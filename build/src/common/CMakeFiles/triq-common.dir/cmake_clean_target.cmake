file(REMOVE_RECURSE
  "libtriq-common.a"
)
