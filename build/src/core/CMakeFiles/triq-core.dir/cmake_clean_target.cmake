file(REMOVE_RECURSE
  "libtriq-core.a"
)
