# Empty compiler generated dependencies file for triq-core.
# This may be replaced when dependencies are built.
