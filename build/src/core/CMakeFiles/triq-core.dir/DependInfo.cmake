
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cc" "src/core/CMakeFiles/triq-core.dir/backend.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/backend.cc.o.d"
  "/root/repo/src/core/circuit.cc" "src/core/CMakeFiles/triq-core.dir/circuit.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/circuit.cc.o.d"
  "/root/repo/src/core/compiler.cc" "src/core/CMakeFiles/triq-core.dir/compiler.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/compiler.cc.o.d"
  "/root/repo/src/core/decompose.cc" "src/core/CMakeFiles/triq-core.dir/decompose.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/decompose.cc.o.d"
  "/root/repo/src/core/draw.cc" "src/core/CMakeFiles/triq-core.dir/draw.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/draw.cc.o.d"
  "/root/repo/src/core/esp.cc" "src/core/CMakeFiles/triq-core.dir/esp.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/esp.cc.o.d"
  "/root/repo/src/core/gate.cc" "src/core/CMakeFiles/triq-core.dir/gate.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/gate.cc.o.d"
  "/root/repo/src/core/mapper.cc" "src/core/CMakeFiles/triq-core.dir/mapper.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/mapper.cc.o.d"
  "/root/repo/src/core/mapper_z3.cc" "src/core/CMakeFiles/triq-core.dir/mapper_z3.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/mapper_z3.cc.o.d"
  "/root/repo/src/core/peephole.cc" "src/core/CMakeFiles/triq-core.dir/peephole.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/peephole.cc.o.d"
  "/root/repo/src/core/quaternion.cc" "src/core/CMakeFiles/triq-core.dir/quaternion.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/quaternion.cc.o.d"
  "/root/repo/src/core/reliability.cc" "src/core/CMakeFiles/triq-core.dir/reliability.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/reliability.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/triq-core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/router.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/triq-core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/schedule.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/triq-core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/serialize.cc.o.d"
  "/root/repo/src/core/translate.cc" "src/core/CMakeFiles/triq-core.dir/translate.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/translate.cc.o.d"
  "/root/repo/src/core/unitary.cc" "src/core/CMakeFiles/triq-core.dir/unitary.cc.o" "gcc" "src/core/CMakeFiles/triq-core.dir/unitary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/triq-common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/triq-device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
