file(REMOVE_RECURSE
  "CMakeFiles/triq-lang.dir/lexer.cc.o"
  "CMakeFiles/triq-lang.dir/lexer.cc.o.d"
  "CMakeFiles/triq-lang.dir/lower.cc.o"
  "CMakeFiles/triq-lang.dir/lower.cc.o.d"
  "CMakeFiles/triq-lang.dir/parser.cc.o"
  "CMakeFiles/triq-lang.dir/parser.cc.o.d"
  "CMakeFiles/triq-lang.dir/qasm_parser.cc.o"
  "CMakeFiles/triq-lang.dir/qasm_parser.cc.o.d"
  "CMakeFiles/triq-lang.dir/scaff_writer.cc.o"
  "CMakeFiles/triq-lang.dir/scaff_writer.cc.o.d"
  "libtriq-lang.a"
  "libtriq-lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
