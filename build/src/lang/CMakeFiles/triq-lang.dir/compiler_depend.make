# Empty compiler generated dependencies file for triq-lang.
# This may be replaced when dependencies are built.
