file(REMOVE_RECURSE
  "libtriq-lang.a"
)
