
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/triq-lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/triq-lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/lower.cc" "src/lang/CMakeFiles/triq-lang.dir/lower.cc.o" "gcc" "src/lang/CMakeFiles/triq-lang.dir/lower.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/triq-lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/triq-lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/qasm_parser.cc" "src/lang/CMakeFiles/triq-lang.dir/qasm_parser.cc.o" "gcc" "src/lang/CMakeFiles/triq-lang.dir/qasm_parser.cc.o.d"
  "/root/repo/src/lang/scaff_writer.cc" "src/lang/CMakeFiles/triq-lang.dir/scaff_writer.cc.o" "gcc" "src/lang/CMakeFiles/triq-lang.dir/scaff_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/triq-core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/triq-device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/triq-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
