file(REMOVE_RECURSE
  "libtriq-device.a"
)
