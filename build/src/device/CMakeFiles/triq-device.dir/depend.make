# Empty dependencies file for triq-device.
# This may be replaced when dependencies are built.
