file(REMOVE_RECURSE
  "CMakeFiles/triq-device.dir/calibration.cc.o"
  "CMakeFiles/triq-device.dir/calibration.cc.o.d"
  "CMakeFiles/triq-device.dir/device.cc.o"
  "CMakeFiles/triq-device.dir/device.cc.o.d"
  "CMakeFiles/triq-device.dir/gateset.cc.o"
  "CMakeFiles/triq-device.dir/gateset.cc.o.d"
  "CMakeFiles/triq-device.dir/machines.cc.o"
  "CMakeFiles/triq-device.dir/machines.cc.o.d"
  "CMakeFiles/triq-device.dir/topology.cc.o"
  "CMakeFiles/triq-device.dir/topology.cc.o.d"
  "libtriq-device.a"
  "libtriq-device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
