
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calibration.cc" "src/device/CMakeFiles/triq-device.dir/calibration.cc.o" "gcc" "src/device/CMakeFiles/triq-device.dir/calibration.cc.o.d"
  "/root/repo/src/device/device.cc" "src/device/CMakeFiles/triq-device.dir/device.cc.o" "gcc" "src/device/CMakeFiles/triq-device.dir/device.cc.o.d"
  "/root/repo/src/device/gateset.cc" "src/device/CMakeFiles/triq-device.dir/gateset.cc.o" "gcc" "src/device/CMakeFiles/triq-device.dir/gateset.cc.o.d"
  "/root/repo/src/device/machines.cc" "src/device/CMakeFiles/triq-device.dir/machines.cc.o" "gcc" "src/device/CMakeFiles/triq-device.dir/machines.cc.o.d"
  "/root/repo/src/device/topology.cc" "src/device/CMakeFiles/triq-device.dir/topology.cc.o" "gcc" "src/device/CMakeFiles/triq-device.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/triq-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
