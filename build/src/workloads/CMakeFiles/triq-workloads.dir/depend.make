# Empty dependencies file for triq-workloads.
# This may be replaced when dependencies are built.
