# Empty compiler generated dependencies file for triq-workloads.
# This may be replaced when dependencies are built.
