file(REMOVE_RECURSE
  "CMakeFiles/triq-workloads.dir/benchmarks.cc.o"
  "CMakeFiles/triq-workloads.dir/benchmarks.cc.o.d"
  "CMakeFiles/triq-workloads.dir/supremacy.cc.o"
  "CMakeFiles/triq-workloads.dir/supremacy.cc.o.d"
  "CMakeFiles/triq-workloads.dir/variational.cc.o"
  "CMakeFiles/triq-workloads.dir/variational.cc.o.d"
  "libtriq-workloads.a"
  "libtriq-workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
