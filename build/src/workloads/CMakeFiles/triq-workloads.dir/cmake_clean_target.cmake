file(REMOVE_RECURSE
  "libtriq-workloads.a"
)
