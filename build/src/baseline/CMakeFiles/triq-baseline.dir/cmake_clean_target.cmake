file(REMOVE_RECURSE
  "libtriq-baseline.a"
)
