# Empty compiler generated dependencies file for triq-baseline.
# This may be replaced when dependencies are built.
