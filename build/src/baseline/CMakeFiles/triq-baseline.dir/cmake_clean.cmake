file(REMOVE_RECURSE
  "CMakeFiles/triq-baseline.dir/astar_router.cc.o"
  "CMakeFiles/triq-baseline.dir/astar_router.cc.o.d"
  "CMakeFiles/triq-baseline.dir/vendor_compilers.cc.o"
  "CMakeFiles/triq-baseline.dir/vendor_compilers.cc.o.d"
  "libtriq-baseline.a"
  "libtriq-baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
