# Empty compiler generated dependencies file for triq-sim.
# This may be replaced when dependencies are built.
