file(REMOVE_RECURSE
  "libtriq-sim.a"
)
