
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/compact.cc" "src/sim/CMakeFiles/triq-sim.dir/compact.cc.o" "gcc" "src/sim/CMakeFiles/triq-sim.dir/compact.cc.o.d"
  "/root/repo/src/sim/density.cc" "src/sim/CMakeFiles/triq-sim.dir/density.cc.o" "gcc" "src/sim/CMakeFiles/triq-sim.dir/density.cc.o.d"
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/triq-sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/triq-sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/mitigation.cc" "src/sim/CMakeFiles/triq-sim.dir/mitigation.cc.o" "gcc" "src/sim/CMakeFiles/triq-sim.dir/mitigation.cc.o.d"
  "/root/repo/src/sim/noise.cc" "src/sim/CMakeFiles/triq-sim.dir/noise.cc.o" "gcc" "src/sim/CMakeFiles/triq-sim.dir/noise.cc.o.d"
  "/root/repo/src/sim/statevector.cc" "src/sim/CMakeFiles/triq-sim.dir/statevector.cc.o" "gcc" "src/sim/CMakeFiles/triq-sim.dir/statevector.cc.o.d"
  "/root/repo/src/sim/verify.cc" "src/sim/CMakeFiles/triq-sim.dir/verify.cc.o" "gcc" "src/sim/CMakeFiles/triq-sim.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/triq-core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/triq-device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/triq-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
