file(REMOVE_RECURSE
  "CMakeFiles/triq-sim.dir/compact.cc.o"
  "CMakeFiles/triq-sim.dir/compact.cc.o.d"
  "CMakeFiles/triq-sim.dir/density.cc.o"
  "CMakeFiles/triq-sim.dir/density.cc.o.d"
  "CMakeFiles/triq-sim.dir/executor.cc.o"
  "CMakeFiles/triq-sim.dir/executor.cc.o.d"
  "CMakeFiles/triq-sim.dir/mitigation.cc.o"
  "CMakeFiles/triq-sim.dir/mitigation.cc.o.d"
  "CMakeFiles/triq-sim.dir/noise.cc.o"
  "CMakeFiles/triq-sim.dir/noise.cc.o.d"
  "CMakeFiles/triq-sim.dir/statevector.cc.o"
  "CMakeFiles/triq-sim.dir/statevector.cc.o.d"
  "CMakeFiles/triq-sim.dir/verify.cc.o"
  "CMakeFiles/triq-sim.dir/verify.cc.o.d"
  "libtriq-sim.a"
  "libtriq-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
