/**
 * @file
 * triqc — the TriQ command-line compiler driver.
 *
 * Compiles a ScaffLite or OpenQASM program for any of the seven study
 * machines at any Table-1 optimization level and prints the executable
 * assembly, plus an optional compilation/prediction report.
 *
 * Usage:
 *   triqc [options] <program-file>
 *   triqc --list-devices
 *   triqc --bench BV4 -d IBMQ14 -O cn --report
 *
 * Options:
 *   -d, --device NAME    target machine (default IBMQ5)
 *   -O, --level L        n | 1q | c | cn (default cn)
 *   -m, --mapper M       trivial | greedy | bnb | smt (default bnb)
 *   --day N              calibration day (default 0)
 *   --bench NAME         compile a built-in study benchmark instead of
 *                        a file
 *   --qasm               parse the input file as OpenQASM 2.0
 *   --peephole           enable inverse-pair cancellation
 *   --report             print gate counts, ESP and predicted success
 *   --trials N           trials for the success prediction (default 2000)
 *   --sim-threads N      simulator worker threads for the prediction
 *   -o FILE              write assembly to FILE instead of stdout
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.hh"
#include "core/compiler.hh"
#include "core/esp.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "lang/qasm_parser.hh"
#include "sim/executor.hh"
#include "sim/verify.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

struct Args
{
    std::string device = "IBMQ5";
    std::string level = "cn";
    std::string mapper = "bnb";
    std::string inputFile;
    std::string benchName;
    std::string outputFile;
    std::string calibrationFile;
    int day = 0;
    int trials = 2000;
    int simThreads = 0; // 0 = TRIQ_SIM_THREADS env (default serial)
    bool qasm = false;
    bool peephole = false;
    bool report = false;
    bool verify = false;
    bool listDevices = false;
};

void
usage()
{
    std::cerr <<
        "usage: triqc [options] <program.scaff>\n"
        "  -d, --device NAME   target machine (see --list-devices)\n"
        "  -O, --level L       n | 1q | c | cn         (default cn)\n"
        "  -m, --mapper M      trivial|greedy|bnb|smt  (default bnb)\n"
        "  --day N             calibration day         (default 0)\n"
        "  --calibration FILE  load calibration from FILE (triq-calgen\n"
        "                      format) instead of synthesizing a day\n"
        "  --bench NAME        compile a built-in benchmark\n"
        "  --qasm              input is OpenQASM 2.0\n"
        "  --peephole          enable inverse-pair cancellation\n"
        "  --report            print stats, ESP, predicted success\n"
        "  --verify            check compiled-vs-program equivalence\n"
        "  --trials N          prediction trials       (default 2000)\n"
        "  --sim-threads N     simulator worker threads for --report\n"
        "                      (default: TRIQ_SIM_THREADS env, else 1;\n"
        "                      results are identical for any value)\n"
        "  -o FILE             write assembly to FILE\n"
        "  --list-devices      list the seven study machines\n";
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    auto need_value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            fatal("triqc: ", flag, " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "-d") || !std::strcmp(arg, "--device"))
            a.device = need_value(i, arg);
        else if (!std::strcmp(arg, "-O") || !std::strcmp(arg, "--level"))
            a.level = need_value(i, arg);
        else if (!std::strcmp(arg, "-m") || !std::strcmp(arg, "--mapper"))
            a.mapper = need_value(i, arg);
        else if (!std::strcmp(arg, "--day"))
            a.day = std::atoi(need_value(i, arg));
        else if (!std::strcmp(arg, "--calibration"))
            a.calibrationFile = need_value(i, arg);
        else if (!std::strcmp(arg, "--bench"))
            a.benchName = need_value(i, arg);
        else if (!std::strcmp(arg, "--qasm"))
            a.qasm = true;
        else if (!std::strcmp(arg, "--peephole"))
            a.peephole = true;
        else if (!std::strcmp(arg, "--report"))
            a.report = true;
        else if (!std::strcmp(arg, "--verify"))
            a.verify = true;
        else if (!std::strcmp(arg, "--trials"))
            a.trials = std::atoi(need_value(i, arg));
        else if (!std::strcmp(arg, "--sim-threads"))
            a.simThreads = std::atoi(need_value(i, arg));
        else if (!std::strcmp(arg, "-o"))
            a.outputFile = need_value(i, arg);
        else if (!std::strcmp(arg, "--list-devices"))
            a.listDevices = true;
        else if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
            usage();
            std::exit(0);
        } else if (arg[0] == '-') {
            fatal("triqc: unknown option '", arg, "'");
        } else {
            a.inputFile = arg;
        }
    }
    return a;
}

OptLevel
levelFromString(const std::string &s)
{
    if (s == "n")
        return OptLevel::N;
    if (s == "1q")
        return OptLevel::OneQOpt;
    if (s == "c")
        return OptLevel::OneQOptC;
    if (s == "cn")
        return OptLevel::OneQOptCN;
    fatal("triqc: unknown level '", s, "' (expected n|1q|c|cn)");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args = parseArgs(argc, argv);
        if (args.listDevices) {
            for (const Device &d : allStudyDevices())
                std::cout << d.name() << ": " << d.numQubits()
                          << " qubits, " << d.gateSet().describe()
                          << "\n";
            return 0;
        }
        if (args.inputFile.empty() && args.benchName.empty()) {
            usage();
            return 2;
        }

        Circuit program = [&] {
            if (!args.benchName.empty())
                return makeBenchmark(args.benchName);
            if (args.qasm) {
                std::ifstream in(args.inputFile);
                if (!in)
                    fatal("triqc: cannot open '", args.inputFile, "'");
                std::ostringstream ss;
                ss << in.rdbuf();
                return parseOpenQasm(ss.str());
            }
            return compileScaffLiteFile(args.inputFile);
        }();

        Device dev = [&] {
            for (auto &d : allStudyDevices())
                if (d.name() == args.device)
                    return d;
            fatal("triqc: unknown device '", args.device,
                  "' (try --list-devices)");
        }();

        Calibration calib = [&] {
            if (args.calibrationFile.empty())
                return dev.calibrate(args.day);
            std::ifstream in(args.calibrationFile);
            if (!in)
                fatal("triqc: cannot open calibration '",
                      args.calibrationFile, "'");
            return Calibration::load(in);
        }();
        CompileOptions opts;
        opts.level = levelFromString(args.level);
        opts.mapping.kind = mapperKindFromString(args.mapper);
        opts.peephole = args.peephole;
        CompileResult res = compileForDevice(program, dev, calib, opts);

        if (args.outputFile.empty()) {
            std::cout << res.assembly;
        } else {
            std::ofstream out(args.outputFile);
            if (!out)
                fatal("triqc: cannot write '", args.outputFile, "'");
            out << res.assembly;
        }

        if (args.verify) {
            VerificationResult v = verifyCompilation(program, res);
            std::cerr << "verification: "
                      << (v.equivalent ? "EQUIVALENT" : "MISMATCH")
                      << " (max deviation " << v.maxDeviation << ")\n";
            if (!v.equivalent)
                return 3;
        }

        if (args.report) {
            ExecOptions exec_opts;
            exec_opts.threads = args.simThreads;
            ExecutionResult run =
                executeNoisy(res.hwCircuit, dev, calib, args.trials,
                             12345, exec_opts);
            std::cerr << "== triqc report ==\n"
                      << "program:        " << program.name() << " ("
                      << program.numQubits() << " qubits)\n"
                      << "device:         " << dev.name() << " day "
                      << args.day << "\n"
                      << "level:          " << optLevelName(opts.level)
                      << "\n"
                      << "2Q gates:       " << res.stats.twoQ << "\n"
                      << "1Q pulses:      " << res.stats.pulses1q << "\n"
                      << "virtual Z:      " << res.stats.virtualZ << "\n"
                      << "swaps:          " << res.swapCount << "\n"
                      << "compile time:   " << res.compileMs << " ms\n"
                      << "ESP:            " << run.esp << "\n"
                      << "pred. success:  " << run.successRate << " ("
                      << run.trials << " trials)\n";
        }
        return 0;
    } catch (const FatalError &e) {
        return 1;
    } catch (const PanicError &e) {
        return 70;
    }
}
