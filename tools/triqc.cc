/**
 * @file
 * triqc — the TriQ command-line compiler driver.
 *
 * Compiles a ScaffLite or OpenQASM program for any of the seven study
 * machines at any Table-1 optimization level and prints the executable
 * assembly, plus an optional compilation/prediction report.
 *
 * Usage:
 *   triqc [options] <program-file>
 *   triqc --list-devices
 *   triqc --bench BV4 -d IBMQ14 -O cn --report
 *
 * Options:
 *   -d, --device NAME    target machine (default IBMQ5)
 *   -O, --level L        n | 1q | c | cn (default cn)
 *   -m, --mapper M       trivial | greedy | bnb | smt (default bnb)
 *   --day N              calibration day (default 0)
 *   --bench NAME         compile a built-in study benchmark instead of
 *                        a file
 *   --qasm               parse the input file as OpenQASM 2.0
 *   --peephole           enable inverse-pair cancellation
 *   --report             print gate counts, ESP and predicted success
 *   --trials N           trials for the success prediction (default 2000)
 *   --sim-threads N      simulator worker threads for the prediction
 *   --sim-fusion N       gate fusion for the prediction (1 on, -1 off)
 *   -o FILE              write assembly to FILE instead of stdout
 *
 * Internal errors (PanicError — a TriQ bug, exit code 2) dump a crash
 * report to triq-crash-<pid>/ (program text, calibration snapshot,
 * options, seed); `triqc --replay <dir>` re-runs that exact invocation
 * from the bundle. See src/core/crash_report.hh.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/fault_injector.hh"
#include "common/logging.hh"
#include "common/resource.hh"
#include "core/compiler.hh"
#include "core/crash_report.hh"
#include "core/esp.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "lang/qasm_parser.hh"
#include "sim/executor.hh"
#include "sim/verify.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

struct Args
{
    std::string device = "IBMQ5";
    std::string level = "cn";
    std::string mapper = "bnb";
    std::string inputFile;
    std::string benchName;
    std::string outputFile;
    std::string calibrationFile;
    std::string crashDir;  // "" = triq-crash-<pid> in the CWD
    std::string replayDir; // "" = normal invocation
    int day = 0;
    int trials = 2000;
    int simThreads = 0; // 0 = TRIQ_SIM_THREADS env (default serial)
    int simFusion = 0;  // 0 = TRIQ_SIM_FUSION env (default on)
    double budgetMs = 0.0; // 0 = unlimited
    long nodeBudget = 0;   // 0 = engine default
    bool strictCalibration = false;
    bool diagJson = false;
    bool qasm = false;
    bool peephole = false;
    bool report = false;
    bool verify = false;
    bool listDevices = false;
};

void
usage()
{
    std::cerr <<
        "usage: triqc [options] <program.scaff>\n"
        "  -d, --device NAME   target machine (see --list-devices)\n"
        "  -O, --level L       n | 1q | c | cn         (default cn)\n"
        "  -m, --mapper M      trivial|greedy|bnb|smt  (default bnb)\n"
        "  --day N             calibration day         (default 0)\n"
        "  --calibration FILE  load calibration from FILE (triq-calgen\n"
        "                      format) instead of synthesizing a day\n"
        "  --bench NAME        compile a built-in benchmark\n"
        "  --qasm              input is OpenQASM 2.0\n"
        "  --peephole          enable inverse-pair cancellation\n"
        "  --budget-ms MS      wall-clock compile deadline; the pipeline\n"
        "                      degrades gracefully (anytime mapping)\n"
        "                      instead of overrunning\n"
        "  --node-budget N     mapper search-node budget\n"
        "  --strict-calibration  reject invalid calibration values\n"
        "                      instead of clamping them\n"
        "  --diag-json         print diagnostics + compile report as JSON\n"
        "                      on stdout (suppresses assembly; use -o)\n"
        "  --report            print stats, ESP, predicted success\n"
        "  --verify            check compiled-vs-program equivalence\n"
        "  --trials N          prediction trials       (default 2000)\n"
        "  --sim-threads N     simulator worker threads for --report\n"
        "                      (default: TRIQ_SIM_THREADS env, else 1;\n"
        "                      -1 or env 0 = adaptive cost model;\n"
        "                      results are identical for any value)\n"
        "  --sim-fusion N      gate fusion for --report trajectories:\n"
        "                      1 on, -1 off (default: TRIQ_SIM_FUSION\n"
        "                      env, else on)\n"
        "  --crash-dir DIR     where an internal-error crash report is\n"
        "                      written (default triq-crash-<pid>/)\n"
        "  --replay DIR        re-run the invocation captured in a\n"
        "                      crash-report directory\n"
        "  -o FILE             write assembly to FILE\n"
        "  --list-devices      list the seven study machines\n";
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    auto need_value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            fatal("triqc: ", flag, " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "-d") || !std::strcmp(arg, "--device"))
            a.device = need_value(i, arg);
        else if (!std::strcmp(arg, "-O") || !std::strcmp(arg, "--level"))
            a.level = need_value(i, arg);
        else if (!std::strcmp(arg, "-m") || !std::strcmp(arg, "--mapper"))
            a.mapper = need_value(i, arg);
        else if (!std::strcmp(arg, "--day"))
            a.day = std::atoi(need_value(i, arg));
        else if (!std::strcmp(arg, "--calibration"))
            a.calibrationFile = need_value(i, arg);
        else if (!std::strcmp(arg, "--bench"))
            a.benchName = need_value(i, arg);
        else if (!std::strcmp(arg, "--budget-ms"))
            a.budgetMs = std::atof(need_value(i, arg));
        else if (!std::strcmp(arg, "--node-budget"))
            a.nodeBudget = std::atol(need_value(i, arg));
        else if (!std::strcmp(arg, "--strict-calibration"))
            a.strictCalibration = true;
        else if (!std::strcmp(arg, "--diag-json"))
            a.diagJson = true;
        else if (!std::strcmp(arg, "--qasm"))
            a.qasm = true;
        else if (!std::strcmp(arg, "--peephole"))
            a.peephole = true;
        else if (!std::strcmp(arg, "--report"))
            a.report = true;
        else if (!std::strcmp(arg, "--verify"))
            a.verify = true;
        else if (!std::strcmp(arg, "--trials"))
            a.trials = std::atoi(need_value(i, arg));
        else if (!std::strcmp(arg, "--sim-threads"))
            a.simThreads = std::atoi(need_value(i, arg));
        else if (!std::strcmp(arg, "--sim-fusion"))
            a.simFusion = std::atoi(need_value(i, arg));
        else if (!std::strcmp(arg, "--crash-dir"))
            a.crashDir = need_value(i, arg);
        else if (!std::strcmp(arg, "--replay"))
            a.replayDir = need_value(i, arg);
        else if (!std::strcmp(arg, "-o"))
            a.outputFile = need_value(i, arg);
        else if (!std::strcmp(arg, "--list-devices"))
            a.listDevices = true;
        else if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
            usage();
            std::exit(0);
        } else if (arg[0] == '-') {
            fatal("triqc: unknown option '", arg, "'");
        } else {
            a.inputFile = arg;
        }
    }
    return a;
}

/**
 * Crash capture: run() snapshots every input into this bundle as it
 * materializes (program text post-injection, calibration snapshot,
 * compile options), so main()'s internal-error handlers can dump a
 * replayable artifact no matter where the pipeline panicked.
 */
CrashBundle g_crash;
bool g_crashArmed = false;
std::string g_crashDir; // --crash-dir override ("" = default)

/** Dump the captured inputs next to the panic message (best effort). */
void
reportCrash(const char *what)
{
    if (!g_crashArmed)
        return;
    g_crash.error = what ? what : "";
    // resolveCrashDir keeps a recycled PID (or a second crash in one
    // working directory) from overwriting an earlier bundle.
    std::string dir =
        resolveCrashDir(g_crashDir.empty() ? defaultCrashDir()
                                           : g_crashDir);
    try {
        g_crash.write(dir);
        std::cerr << "triqc: crash report written to '" << dir
                  << "/'; reproduce with: triqc --replay " << dir << "\n";
    } catch (...) {
        std::cerr << "triqc: failed to write crash report to '" << dir
                  << "'\n";
    }
}

OptLevel
levelFromString(const std::string &s)
{
    if (s == "n")
        return OptLevel::N;
    if (s == "1q")
        return OptLevel::OneQOpt;
    if (s == "c")
        return OptLevel::OneQOptC;
    if (s == "cn")
        return OptLevel::OneQOptCN;
    fatal("triqc: unknown level '", s, "' (expected n|1q|c|cn)");
}

/** The real driver; exceptions escape to main()'s exit-code mapping. */
int
run(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    if (args.listDevices) {
        for (const Device &d : allStudyDevices())
            std::cout << d.name() << ": " << d.numQubits()
                      << " qubits, " << d.gateSet().describe() << "\n";
        return 0;
    }
    // Replay mode: a crash bundle is just a saved invocation, so
    // replaying is rewriting the argument set to point at the bundle's
    // files and falling through to the normal pipeline. Replays should
    // run with TRIQ_FAULT unset — the bundle already holds the inputs
    // *after* any original fault injection.
    if (!args.replayDir.empty()) {
        CrashBundle b = CrashBundle::load(args.replayDir);
        // Reproduce the crashing process's TRIQ_* knobs (sched
        // calibration, dedup/fusion toggles, ...); TRIQ_FAULT* is
        // skipped inside applyTriqEnv.
        int applied = applyTriqEnv(b.envKnobs);
        if (applied > 0)
            std::cerr << "triqc: replay applied " << applied
                      << " TRIQ_* knob(s) from the bundle\n";
        // A server-mode run may have fanned out under the adaptive
        // scheduler; pin the recorded decision so the replay's timing
        // shape matches the crash, not a fresh quiet-machine choice.
        if (b.schedMode == "threaded" && b.simThreads == 0 &&
            b.schedThreads > 0)
            b.simThreads = b.schedThreads;
        args.benchName = b.benchName;
        args.qasm = b.qasm;
        args.device = b.device;
        args.day = b.day;
        args.level = b.level;
        args.mapper = b.mapper;
        args.peephole = b.peephole;
        args.strictCalibration = b.strictCalibration;
        args.budgetMs = b.budgetMs;
        args.nodeBudget = b.nodeBudget;
        args.trials = b.trials;
        args.simThreads = b.simThreads;
        args.simFusion = b.simFusion;
        args.inputFile =
            b.hasProgram ? args.replayDir + "/program.txt" : "";
        args.calibrationFile =
            b.hasCalibration ? args.replayDir + "/calibration.txt" : "";
        std::cerr << "triqc: replaying crash report '" << args.replayDir
                  << "'\n";
    }
    if (args.inputFile.empty() && args.benchName.empty()) {
        usage();
        return 1;
    }

    // From here on an internal error produces a crash bundle.
    g_crashDir = args.crashDir;
    g_crashArmed = true;
    g_crash.benchName = args.benchName;
    g_crash.qasm = args.qasm;
    g_crash.device = args.device;
    g_crash.day = args.day;
    g_crash.level = args.level;
    g_crash.mapper = args.mapper;
    g_crash.peephole = args.peephole;
    g_crash.strictCalibration = args.strictCalibration;
    g_crash.budgetMs = args.budgetMs;
    g_crash.nodeBudget = args.nodeBudget;
    g_crash.seed = 12345; // executeNoisy seed below
    g_crash.trials = args.trials;
    g_crash.simThreads = args.simThreads;
    g_crash.simFusion = args.simFusion;
    g_crash.envKnobs = captureTriqEnv();

    // Optional fault injection (TRIQ_FAULT env): corrupts the inputs
    // *before* they hit the front end / validator, to exercise exactly
    // the paths a hostile or broken feed would.
    FaultInjector inj = FaultInjector::fromEnv();
    if (inj.enabled())
        warn("triqc: fault injection armed (", inj.summary(), ")");

    Diagnostics diags(args.benchName.empty() ? args.inputFile
                                             : "<bench>");
    Circuit program = [&] {
        if (!args.benchName.empty())
            return makeBenchmark(args.benchName);
        std::ifstream in(args.inputFile);
        if (!in)
            fatal("triqc: cannot open '", args.inputFile, "'");
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string source = ss.str();
        if (inj.armsText())
            source = inj.corruptText(std::move(source));
        g_crash.programText = source;
        g_crash.hasProgram = true;
        return args.qasm ? parseOpenQasm(source, diags)
                         : compileScaffLite(source, diags);
    }();
    if (!diags.all().empty())
        std::cerr << diags.text();
    if (diags.hasErrors()) {
        if (args.diagJson)
            std::cout << "{\"diagnostics\":" << diags.json() << "}\n";
        std::cerr << "triqc: " << diags.errorCount()
                  << " error(s) in '" << args.inputFile << "'\n";
        return 1;
    }

    Device dev = [&] {
        for (auto &d : allStudyDevices())
            if (d.name() == args.device)
                return d;
        fatal("triqc: unknown device '", args.device,
              "' (try --list-devices)");
    }();

    Calibration calib = [&] {
        if (args.calibrationFile.empty())
            return dev.calibrate(args.day);
        std::ifstream in(args.calibrationFile);
        if (!in)
            fatal("triqc: cannot open calibration '",
                  args.calibrationFile, "'");
        return Calibration::load(in);
    }();
    if (inj.armsCalibration()) {
        int n = injectCalibrationFaults(calib, inj);
        warn("triqc: injected ", n, " calibration fault(s)");
    }
    g_crash.calibration = calib;
    g_crash.hasCalibration = true;

    CompileOptions opts;
    opts.level = levelFromString(args.level);
    opts.mapping.kind = mapperKindFromString(args.mapper);
    opts.peephole = args.peephole;
    opts.strictCalibration = args.strictCalibration;
    if (args.budgetMs > 0.0)
        opts.budget = CompileBudget::withDeadlineMs(args.budgetMs);
    if (args.nodeBudget > 0)
        opts.mapping.nodeBudget = args.nodeBudget;

    // Synthetic internal fault (TRIQ_FAULT=panic): raised after every
    // input is captured, so the crash-report dump-and-replay loop can
    // be driven deterministically by tests.
    if (inj.armsPanic())
        panic("triqc: injected internal fault (TRIQ_FAULT=panic)");

    CompileResult res = compileForDevice(program, dev, calib, opts);

    if (!args.outputFile.empty()) {
        std::ofstream out(args.outputFile);
        if (!out)
            fatal("triqc: cannot write '", args.outputFile, "'");
        out << res.assembly;
    } else if (!args.diagJson) {
        std::cout << res.assembly;
    }
    if (args.diagJson)
        std::cout << "{\"diagnostics\":" << diags.json()
                  << ",\"report\":" << res.report.json() << "}\n";

    if (args.verify) {
        VerificationResult v = verifyCompilation(program, res);
        std::cerr << "verification: "
                  << (v.equivalent ? "EQUIVALENT" : "MISMATCH")
                  << " (max deviation " << v.maxDeviation << ")\n";
        if (!v.equivalent)
            return 3;
    }

    if (args.report) {
        ExecOptions exec_opts;
        exec_opts.threads = args.simThreads;
        exec_opts.fusion = args.simFusion;
        ExecutionResult run =
            executeNoisy(res.hwCircuit, dev, calib, args.trials, 12345,
                         exec_opts);
        // Record the fan-out the scheduler actually took so a crash
        // bundle written after this point replays the same shape.
        g_crash.schedMode = run.sched.mode();
        g_crash.schedThreads = run.sched.threads;
        g_crash.schedItemsPerTask = run.sched.itemsPerTask;
        std::cerr << "== triqc report ==\n"
                  << "program:        " << program.name() << " ("
                  << program.numQubits() << " qubits)\n"
                  << "device:         " << dev.name() << " day "
                  << args.day << "\n"
                  << "level:          " << optLevelName(opts.level)
                  << "\n"
                  << "2Q gates:       " << res.stats.twoQ << "\n"
                  << "1Q pulses:      " << res.stats.pulses1q << "\n"
                  << "virtual Z:      " << res.stats.virtualZ << "\n"
                  << "swaps:          " << res.swapCount << "\n"
                  << "compile time:   " << res.compileMs << " ms\n"
                  << "ESP:            " << run.esp << "\n"
                  << "pred. success:  " << run.successRate << " ("
                  << run.trials << " trials)\n"
                  << res.report.str();
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Exit-code contract (DESIGN.md, "Error-handling contract"):
    //   0 success, 1 user error, 2 internal TriQ bug, 3 verification
    //   mismatch. Nothing escapes as an uncaught exception.
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 1; // message already printed by fatal()
    } catch (const ResourceError &e) {
        // The simulation could not get its memory (budget refusal or a
        // failed allocation): a resource outcome, not a TriQ bug — one
        // structured diagnostic line and exit 1, never an abort or a
        // crash bundle.
        std::cerr << "triqc: error: " << e.what()
                  << "\n{\"code\": \"sim.oom\", \"attempted_bytes\": "
                  << e.attemptedBytes
                  << ", \"budget_bytes\": " << e.budgetBytes << "}\n";
        return 1;
    } catch (const PanicError &e) {
        // Message already printed by panic(); dump the captured inputs
        // so the bug reproduces from one artifact (triqc --replay).
        reportCrash(e.what());
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "triqc: internal error: " << e.what() << "\n";
        reportCrash(e.what());
        return 2;
    } catch (...) {
        std::cerr << "triqc: internal error: unknown exception\n";
        reportCrash("unknown exception");
        return 2;
    }
}
