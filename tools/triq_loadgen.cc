/**
 * @file
 * triq-loadgen: drive a live triqd through the fig07 benchmark set at
 * configurable concurrency and measure what the paper's evaluation
 * loop would see from a shared compile service: throughput, latency
 * percentiles, cache hit rate, and how the daemon behaves under abuse.
 *
 * Usage:
 *   triq-loadgen --socket PATH [options]
 *
 * Options:
 *   --clients N      concurrent connections (default 4)
 *   --reps R         passes over the benchmark set per client (def. 2)
 *   --op OP          compile | simulate (default compile)
 *   --trials T       trials per simulate request (default 200)
 *   --device NAME    target machine (default IBMQ14 — fits the set)
 *   --fault          fault mode: deterministically interleave
 *                    malformed frames, mid-stream disconnects and
 *                    strict-mode calibration faults into the replay
 *   --timeout-ms T   per-reply read deadline (default 60000)
 *   -o, --json FILE  metrics report (default BENCH_server.json)
 *
 * Every frame sent must come back as one well-formed JSON reply line —
 * including the deliberately broken ones, which must earn a structured
 * error, not a hangup. Any unanswered frame, malformed reply or
 * unplanned disconnect is a transport error and fails the run (exit 1);
 * the daemon surviving the whole campaign is the robustness contract
 * under test.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "service/wire.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

using Clock = std::chrono::steady_clock;

struct Options
{
    std::string socketPath;
    int clients = 4;
    int reps = 2;
    std::string op = "compile";
    int trials = 200;
    std::string device = "IBMQ14";
    bool fault = false;
    double timeoutMs = 60000.0;
    std::string outPath = "BENCH_server.json";
};

/** One blocking line-oriented connection to the daemon. */
class LineClient
{
  public:
    ~LineClient() { closeFd(); }

    bool
    connectTo(const std::string &path)
    {
        closeFd();
        fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return false;
        sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path))
            return false;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0) {
            closeFd();
            return false;
        }
        buffer_.clear();
        return true;
    }

    void
    closeFd()
    {
        if (fd_ >= 0)
            close(fd_);
        fd_ = -1;
    }

    bool
    sendLine(const std::string &line)
    {
        std::string framed = line + "\n";
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n =
                write(fd_, framed.data() + off, framed.size() - off);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read one reply line; false on timeout or disconnect. */
    bool
    readLine(std::string &out, double timeout_ms)
    {
        auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   timeout_ms));
        for (;;) {
            size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                out = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return true;
            }
            double left = std::chrono::duration<double, std::milli>(
                              deadline - Clock::now())
                              .count();
            if (left <= 0.0)
                return false;
            pollfd pfd = {fd_, POLLIN, 0};
            int pr = poll(&pfd, 1, static_cast<int>(left) + 1);
            if (pr < 0 && errno == EINTR)
                continue;
            if (pr <= 0)
                return false;
            char buf[65536];
            ssize_t n = read(fd_, buf, sizeof(buf));
            if (n <= 0)
                return false;
            buffer_.append(buf, static_cast<size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** Per-client campaign outcome, merged at the end. */
struct ClientResult
{
    long sent = 0;           //!< Frames sent (incl. malformed ones).
    long ok = 0;             //!< ok:true replies.
    long errors = 0;         //!< ok:false structured replies.
    long rejected = 0;       //!< ... of which server.overloaded.
    long transportErrors = 0; //!< Unanswered / unparseable / hangup.
    long disconnects = 0;    //!< Planned mid-stream disconnects.
    std::vector<double> latencies; //!< ms, answered frames only.
};

/**
 * A deliberately malformed frame, cycled deterministically: truncated
 * JSON, raw garbage, an unterminated string, and a non-object.
 */
std::string
malformedFrame(long k)
{
    switch (k % 4) {
      case 0:
        return "{\"id\":\"bad\",\"op\":\"compile\"";
      case 1:
        return "\x01\x02garbage\xff not json";
      case 2:
        return "{\"id\":\"bad\",\"op\":\"comp";
      default:
        return "[1,2,3]";
    }
}

void
runClient(const Options &opt, int client_index, ClientResult &res)
{
    const std::vector<std::string> &benches = benchmarkNames();
    LineClient conn;
    if (!conn.connectTo(opt.socketPath)) {
        warn("triq-loadgen: client ", client_index, ": cannot connect to '",
             opt.socketPath, "'");
        ++res.transportErrors;
        return;
    }

    long seq = 0;
    for (int rep = 0; rep < opt.reps; ++rep) {
        for (size_t bi = 0; bi < benches.size(); ++bi, ++seq) {
            // Fault schedule (deterministic, coprime strides so the
            // classes interleave): every 7th frame is malformed, every
            // 11th is a strict-mode calibration fault, every 17th
            // drops the connection first.
            bool send_malformed = opt.fault && seq % 7 == 3;
            bool calib_fault = opt.fault && seq % 11 == 5;
            bool drop_first = opt.fault && seq % 17 == 9;

            if (drop_first) {
                conn.closeFd();
                ++res.disconnects;
                if (!conn.connectTo(opt.socketPath)) {
                    ++res.transportErrors;
                    return;
                }
            }

            std::string id = "c" + std::to_string(client_index) + "-" +
                             std::to_string(seq);
            std::string frame;
            if (send_malformed) {
                frame = malformedFrame(seq);
            } else {
                JsonWriter w;
                w.beginObject();
                w.key("id").value(id);
                w.key("op").value(opt.op);
                w.key("bench").value(benches[bi]);
                w.key("device").value(opt.device);
                w.key("day").value(static_cast<int>(seq % 3));
                if (opt.op == "simulate") {
                    w.key("trials").value(opt.trials);
                    w.key("seed").value(
                        static_cast<double>(1000 + seq));
                }
                if (calib_fault) {
                    // Deterministically corrupt the calibration and
                    // demand strict handling: the daemon must answer
                    // with a structured input error, never crash.
                    w.key("fault").value("calib");
                    w.key("fault_seed")
                        .value(static_cast<double>(seq + 1));
                    w.key("strict_calibration").value(true);
                }
                w.endObject();
                frame = w.str();
            }

            auto t0 = Clock::now();
            ++res.sent;
            if (!conn.sendLine(frame)) {
                ++res.transportErrors;
                if (!conn.connectTo(opt.socketPath))
                    return;
                continue;
            }
            std::string reply;
            if (!conn.readLine(reply, opt.timeoutMs)) {
                ++res.transportErrors;
                if (!conn.connectTo(opt.socketPath))
                    return;
                continue;
            }
            res.latencies.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count());

            JsonParseResult parsed = parseJson(reply);
            if (!parsed.ok || !parsed.value.isObject()) {
                ++res.transportErrors;
                continue;
            }
            if (parsed.value.getBool("ok", false)) {
                ++res.ok;
            } else {
                ++res.errors;
                const JsonValue *err = parsed.value.find("error");
                if (err &&
                    err->getString("code") == "server.overloaded")
                    ++res.rejected;
            }
        }
    }
}

double
percentile(std::vector<double> sample, double p)
{
    if (sample.empty())
        return 0.0;
    size_t rank = static_cast<size_t>(p * (sample.size() - 1) + 0.5);
    rank = std::min(rank, sample.size() - 1);
    std::nth_element(sample.begin(), sample.begin() + rank, sample.end());
    return sample[rank];
}

void
usage()
{
    std::cerr << "usage: triq-loadgen --socket PATH [--clients N] "
                 "[--reps R] [--op compile|simulate] [--trials T] "
                 "[--device NAME] [--fault] [--timeout-ms T] "
                 "[-o FILE]\n";
}

int
run(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("triq-loadgen: ", arg, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(arg, "--socket"))
            opt.socketPath = next();
        else if (!std::strcmp(arg, "--clients"))
            opt.clients = std::atoi(next());
        else if (!std::strcmp(arg, "--reps"))
            opt.reps = std::atoi(next());
        else if (!std::strcmp(arg, "--op"))
            opt.op = next();
        else if (!std::strcmp(arg, "--trials"))
            opt.trials = std::atoi(next());
        else if (!std::strcmp(arg, "--device"))
            opt.device = next();
        else if (!std::strcmp(arg, "--fault"))
            opt.fault = true;
        else if (!std::strcmp(arg, "--timeout-ms"))
            opt.timeoutMs = std::atof(next());
        else if (!std::strcmp(arg, "-o") || !std::strcmp(arg, "--json"))
            opt.outPath = next();
        else if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
            usage();
            return 0;
        } else {
            fatal("triq-loadgen: unknown option '", arg, "'");
        }
    }
    if (opt.socketPath.empty()) {
        usage();
        return 1;
    }
    if (opt.op != "compile" && opt.op != "simulate")
        fatal("triq-loadgen: --op must be compile or simulate");
    if (opt.clients < 1 || opt.reps < 1)
        fatal("triq-loadgen: --clients and --reps must be >= 1");

    auto t0 = Clock::now();
    std::vector<ClientResult> results(opt.clients);
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (int c = 0; c < opt.clients; ++c)
        threads.emplace_back(
            [&, c] { runClient(opt, c, results[c]); });
    for (std::thread &t : threads)
        t.join();
    double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    ClientResult total;
    for (const ClientResult &r : results) {
        total.sent += r.sent;
        total.ok += r.ok;
        total.errors += r.errors;
        total.rejected += r.rejected;
        total.transportErrors += r.transportErrors;
        total.disconnects += r.disconnects;
        total.latencies.insert(total.latencies.end(),
                               r.latencies.begin(), r.latencies.end());
    }

    // Final server-side snapshot over a fresh connection: cache heat
    // and the daemon's own view of the campaign (crashes must be 0
    // unless the campaign deliberately injected panics).
    std::string stats_body = "null";
    {
        LineClient conn;
        if (conn.connectTo(opt.socketPath) &&
            conn.sendLine("{\"id\":\"stats\",\"op\":\"stats\"}")) {
            std::string reply;
            if (conn.readLine(reply, opt.timeoutMs)) {
                JsonParseResult parsed = parseJson(reply);
                if (parsed.ok && parsed.value.isObject() &&
                    parsed.value.find("stats")) {
                    // The stats object is the reply's last member, so
                    // it spans from its opening brace to the reply's
                    // penultimate brace; splice it verbatim.
                    size_t at = reply.find("\"stats\":");
                    size_t open = reply.find('{', at);
                    size_t close = reply.rfind('}');
                    if (open != std::string::npos && close > open)
                        stats_body = reply.substr(open, close - open);
                }
            }
        }
    }

    double wall_s = wall_ms / 1000.0;
    JsonWriter w;
    w.beginObject();
    w.key("bench").value("server");
    w.key("socket").value(opt.socketPath);
    w.key("clients").value(opt.clients);
    w.key("reps").value(opt.reps);
    w.key("op").value(opt.op);
    w.key("fault_mode").value(opt.fault);
    w.key("wall_ms").value(wall_ms);
    w.key("requests").value(total.sent);
    w.key("requests_per_sec")
        .value(wall_s > 0.0 ? total.sent / wall_s : 0.0);
    w.key("ok").value(total.ok);
    w.key("errors").value(total.errors);
    w.key("rejected").value(total.rejected);
    w.key("transport_errors").value(total.transportErrors);
    w.key("planned_disconnects").value(total.disconnects);
    w.key("latency_ms")
        .beginObject()
        .key("count")
        .value(static_cast<long>(total.latencies.size()))
        .key("p50")
        .value(percentile(total.latencies, 0.50))
        .key("p99")
        .value(percentile(total.latencies, 0.99))
        .key("max")
        .value(total.latencies.empty()
                   ? 0.0
                   : *std::max_element(total.latencies.begin(),
                                       total.latencies.end()))
        .endObject();
    w.key("server_stats").raw(stats_body);
    w.endObject();

    std::ofstream out(opt.outPath);
    if (!out)
        fatal("triq-loadgen: cannot write '", opt.outPath, "'");
    out << w.str() << "\n";

    std::cerr << "triq-loadgen: " << total.sent << " requests, "
              << total.ok << " ok, " << total.errors
              << " structured errors, " << total.transportErrors
              << " transport errors in " << wall_ms << " ms -> "
              << opt.outPath << "\n";
    return total.transportErrors == 0 ? 0 : 1;
}

} // namespace
} // namespace triq

int
main(int argc, char **argv)
{
    try {
        return triq::run(argc, argv);
    } catch (const triq::FatalError &) {
        return 1;
    } catch (const triq::PanicError &) {
        return 2;
    }
}
