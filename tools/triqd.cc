/**
 * @file
 * triqd: the persistent compile-and-simulate daemon (see DESIGN.md,
 * "triqd server").
 *
 * Usage:
 *   triqd --socket PATH [options]    serve a Unix-domain socket
 *   triqd --stdio [options]          serve stdin/stdout (tests, CI)
 *
 * Options:
 *   --threads N       worker threads (TRIQ_SERVER_THREADS, default 2)
 *   --queue N         admission queue capacity (TRIQ_SERVER_QUEUE, 64)
 *   --timeout-ms T    queue-wait deadline (TRIQ_SERVER_TIMEOUT_MS, 10000)
 *   --drain-ms T      shutdown drain deadline (TRIQ_SERVER_DRAIN_MS, 2000)
 *   --drain-hard-ms T in-flight hard cap at shutdown
 *                     (TRIQ_SERVER_DRAIN_HARD_MS, 30000)
 *   --max-bytes B     frame size cap (TRIQ_SERVER_MAX_BYTES, 1 MiB)
 *   --budget-ms T     default compile budget (TRIQ_SERVER_BUDGET_MS, off)
 *   --crash-dir DIR   crash-bundle base directory (triq-crash-<pid>)
 *
 * Protocol: newline-delimited JSON (see src/service/server.hh). The
 * daemon never dies on a bad request — every failure is a structured
 * one-line error reply; internal panics additionally dump a replayable
 * crash bundle tagged with the request id. SIGTERM/SIGINT trigger a
 * graceful drain: admission stops, in-flight work finishes, queued
 * work is cancelled when the drain deadline fires, and the final
 * metrics snapshot is flushed to stderr before exit.
 *
 * In socket mode each connection is one fairness unit: a client
 * streaming a thousand compiles round-robins 1:1 with an interactive
 * neighbor. Replies carry the request's `id` so a pipelining client
 * can correlate; within one connection replies come back in request
 * order.
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "service/server.hh"

namespace triq
{
namespace
{

/** Self-pipe written by the signal handler, polled by the accept loop. */
int g_signal_pipe[2] = {-1, -1};

void
onSignal(int)
{
    char byte = 1;
    // write(2) is async-signal-safe; the result is deliberately ignored
    // (a full pipe already means a wakeup is pending).
    ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
    (void)ignored;
}

/**
 * How long sendLine waits for a reluctant reader before dropping the
 * connection. Generous: a healthy client drains a reply line in
 * microseconds, so only a peer that stopped reading ever gets here.
 */
constexpr int kSendTimeoutMs = 5000;

/** One accepted connection; shared with in-flight respond callbacks. */
struct Conn
{
    std::mutex writeMutex;
    int fd = -1;            //!< -1 once closed (guarded by writeMutex).
    std::string name;       //!< Fairness unit ("conn-<K>").
    std::string buffer;     //!< Bytes read, not yet framed.
    bool discarding = false; //!< Skipping an over-long frame's tail.

    /**
     * Send one reply line; silently drops it if the peer is gone. The
     * socket is non-blocking: a peer that submits requests but never
     * reads replies gets kSendTimeoutMs of POLLOUT grace and is then
     * dropped — a slow reader must not wedge a worker thread (and with
     * it every other client's requests). The drop is shutdown(2), not
     * close(2): the accept loop still owns the descriptor and reaps it
     * on the resulting EOF, so there is no fd-reuse race.
     */
    void
    sendLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        if (fd < 0)
            return;
        std::string framed = line + "\n";
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(kSendTimeoutMs);
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n = write(fd, framed.data() + off, framed.size() - off);
            if (n > 0) {
                off += static_cast<size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                auto left =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
                if (left > 0) {
                    pollfd pfd = {fd, POLLOUT, 0};
                    int rc = poll(&pfd, 1, static_cast<int>(left));
                    if (rc > 0 || (rc < 0 && errno == EINTR))
                        continue;
                }
                shutdown(fd, SHUT_RDWR); // slow reader: drop the peer
                return;
            }
            return; // dead peer; the read side will reap the fd
        }
    }

    /** Close the descriptor under the write lock (idempotent). */
    void
    shut()
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        if (fd >= 0)
            close(fd);
        fd = -1;
    }
};

/**
 * Frame `conn`'s buffered bytes into lines and submit each. Oversized
 * unterminated frames are answered once and their tail discarded, so a
 * client streaming garbage without newlines cannot grow daemon memory.
 */
void
pumpConnection(Server &server, const std::shared_ptr<Conn> &conn)
{
    size_t nl;
    while ((nl = conn->buffer.find('\n')) != std::string::npos) {
        std::string line = conn->buffer.substr(0, nl);
        conn->buffer.erase(0, nl + 1);
        if (conn->discarding) {
            conn->discarding = false; // tail of the oversized frame
            continue;
        }
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        std::weak_ptr<Conn> weak = conn;
        server.submit(conn->name, std::move(line),
                      [weak](std::string reply) {
                          if (auto c = weak.lock())
                              c->sendLine(reply);
                      });
    }
    if (conn->discarding) {
        // Still mid-discard with no terminator in sight: every buffered
        // byte is the rejected frame's tail. Drop them now, or a client
        // streaming newline-free bytes after one oversized rejection
        // would grow this buffer without bound.
        conn->buffer.clear();
        return;
    }
    long cap = server.config().maxRequestBytes;
    if (static_cast<long>(conn->buffer.size()) > cap) {
        // No newline yet and already past the frame cap: reject now and
        // skip until the frame's eventual terminator.
        conn->sendLine(server.processLine(
            conn->name,
            std::string(static_cast<size_t>(cap) + 1, ' ')));
        conn->buffer.clear();
        conn->discarding = true;
    }
}

int
serveStdio(Server &server)
{
    std::string line;
    while (std::getline(std::cin, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        std::cout << server.processLine("stdio", line) << "\n"
                  << std::flush;
    }
    server.drain();
    return 0;
}

int
serveSocket(Server &server, const std::string &path)
{
    if (pipe(g_signal_pipe) != 0)
        fatal("triqd: cannot create signal pipe: ", std::strerror(errno));
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
        fatal("triqd: socket(): ", std::strerror(errno));
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("triqd: socket path '", path, "' is too long");
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    unlink(path.c_str()); // stale socket from a previous run
    if (bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0)
        fatal("triqd: bind('", path, "'): ", std::strerror(errno));
    if (listen(listen_fd, 64) != 0)
        fatal("triqd: listen(): ", std::strerror(errno));

    inform("triqd: serving on '", path, "' (", server.config().workers,
           " workers, queue ", server.config().queueCapacity, ")");

    std::map<int, std::shared_ptr<Conn>> conns;
    long next_conn = 0;
    bool stop = false;
    while (!stop) {
        std::vector<pollfd> fds;
        fds.push_back({g_signal_pipe[0], POLLIN, 0});
        fds.push_back({listen_fd, POLLIN, 0});
        for (auto &[fd, conn] : conns)
            fds.push_back({fd, POLLIN, 0});
        if (poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            fatal("triqd: poll(): ", std::strerror(errno));
        }

        if (fds[0].revents & POLLIN) {
            stop = true;
            break;
        }

        if (fds[1].revents & POLLIN) {
            int fd = accept(listen_fd, nullptr, nullptr);
            if (fd >= 0) {
                // Non-blocking, so sendLine can bound its write stalls.
                fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
                auto conn = std::make_shared<Conn>();
                conn->fd = fd;
                conn->name = "conn-" + std::to_string(next_conn++);
                conns.emplace(fd, std::move(conn));
            }
        }

        for (size_t i = 2; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            auto it = conns.find(fds[i].fd);
            if (it == conns.end())
                continue;
            char buf[65536];
            ssize_t n = read(fds[i].fd, buf, sizeof(buf));
            if (n <= 0) {
                if (n < 0 && (errno == EINTR || errno == EAGAIN))
                    continue;
                it->second->shut();
                conns.erase(it);
                continue;
            }
            it->second->buffer.append(buf, static_cast<size_t>(n));
            pumpConnection(server, it->second);
        }
    }

    inform("triqd: shutdown signal received, draining (",
           server.config().drainMs, " ms deadline)");
    server.drain();
    for (auto &[fd, conn] : conns)
        conn->shut();
    close(listen_fd);
    unlink(path.c_str());
    std::cerr << "triqd: final stats: " << server.statsJson() << "\n";
    return 0;
}

void
usage()
{
    std::cerr
        << "usage: triqd (--socket PATH | --stdio) [options]\n"
           "  --socket PATH     serve a Unix-domain socket at PATH\n"
           "  --stdio           serve stdin/stdout (one line per "
           "request)\n"
           "  --threads N       worker threads (TRIQ_SERVER_THREADS)\n"
           "  --queue N         admission queue cap (TRIQ_SERVER_QUEUE)\n"
           "  --timeout-ms T    queue-wait deadline "
           "(TRIQ_SERVER_TIMEOUT_MS)\n"
           "  --drain-ms T      drain deadline (TRIQ_SERVER_DRAIN_MS)\n"
           "  --drain-hard-ms T in-flight hard cap at shutdown "
           "(TRIQ_SERVER_DRAIN_HARD_MS)\n"
           "  --max-bytes B     frame size cap (TRIQ_SERVER_MAX_BYTES)\n"
           "  --budget-ms T     default compile budget "
           "(TRIQ_SERVER_BUDGET_MS)\n"
           "  --crash-dir DIR   crash-bundle base directory\n";
}

int
run(int argc, char **argv)
{
    ServerConfig cfg;
    std::string socket_path;
    bool stdio = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("triqd: ", arg, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(arg, "--socket"))
            socket_path = next();
        else if (!std::strcmp(arg, "--stdio"))
            stdio = true;
        else if (!std::strcmp(arg, "--threads"))
            cfg.workers = std::atoi(next());
        else if (!std::strcmp(arg, "--queue"))
            cfg.queueCapacity = std::atoi(next());
        else if (!std::strcmp(arg, "--timeout-ms"))
            cfg.timeoutMs = std::atof(next());
        else if (!std::strcmp(arg, "--drain-ms"))
            cfg.drainMs = std::atof(next());
        else if (!std::strcmp(arg, "--drain-hard-ms"))
            cfg.drainHardMs = std::atof(next());
        else if (!std::strcmp(arg, "--max-bytes"))
            cfg.maxRequestBytes = std::atol(next());
        else if (!std::strcmp(arg, "--budget-ms"))
            cfg.budgetMs = std::atof(next());
        else if (!std::strcmp(arg, "--crash-dir"))
            cfg.crashDir = next();
        else if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
            usage();
            return 0;
        } else {
            fatal("triqd: unknown option '", arg, "'");
        }
    }
    if (stdio != socket_path.empty()) {
        // Exactly one transport must be chosen.
        usage();
        return 1;
    }

    Server server(std::move(cfg));
    server.start();
    return stdio ? serveStdio(server) : serveSocket(server, socket_path);
}

} // namespace
} // namespace triq

int
main(int argc, char **argv)
{
    try {
        return triq::run(argc, argv);
    } catch (const triq::FatalError &) {
        return 1;
    } catch (const triq::PanicError &) {
        return 2;
    }
}
