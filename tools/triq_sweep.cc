/**
 * @file
 * triq-sweep: evaluate a (program x device x day x level) grid through
 * the parallel sweep engine and emit a JSON results matrix.
 *
 * Usage:
 *   triq-sweep --manifest sweep.txt [-o out.json] [--threads N]
 *              [--drift T] [--no-cache] [--journal cells.jsonl]
 *              [--resume]
 *
 * --journal appends every resolved cell (fsync'd) to a crash-safe
 * JSONL file; --resume restores the finished cells of a killed run
 * from it and completes the grid without recomputing them. Journaled
 * runs emit the matrix in deterministic mode (no wall-clock fields),
 * so kill + resume reproduces the uninterrupted run's output byte for
 * byte.
 *
 * Manifest format — one directive per line, '#' comments; program,
 * device, days and level accept multiple values per line:
 *   program BV4 Toffoli      # built-in benchmarks (triqc --bench names)
 *   program all              # every study benchmark
 *   program file:ex.scaff    # ScaffLite (or .qasm: OpenQASM) source
 *   device IBMQ14 UMDTI      # study machine names, or "all"
 *   days 0..6                # inclusive range, or "days 0 2 5"
 *   level c cn               # n | 1q | c | cn | all
 *   drift 0.05               # drift threshold (CN reuse), optional
 *   journal cells.jsonl      # crash-safe journal path, optional
 *   threads 4                # worker threads; 0 = adaptive, optional
 *   budget_ms 200            # per-compile wall-clock budget, optional
 *   cache 0                  # disable the compile cache, optional
 *   strict_calibration 1     # reject (don't sanitize) bad calibration;
 *                            # failing cells become "error" entries and
 *                            # the tool exits 1 with the partial matrix
 *
 * Env knobs (flags/manifest win): TRIQ_SWEEP_THREADS, TRIQ_CACHE,
 * TRIQ_SWEEP_DRIFT.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/diagnostics.hh"
#include "common/logging.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "lang/qasm_parser.hh"
#include "service/sweep.hh"
#include "service/sweep_matrix.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

OptLevel
parseLevel(const std::string &s)
{
    if (s == "n")
        return OptLevel::N;
    if (s == "1q")
        return OptLevel::OneQOpt;
    if (s == "c")
        return OptLevel::OneQOptC;
    if (s == "cn")
        return OptLevel::OneQOptCN;
    fatal("triq-sweep: unknown level '", s, "' (expected n|1q|c|cn|all)");
}

Circuit
loadProgramFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("triq-sweep: cannot open '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    Diagnostics diags(path);
    bool qasm = path.size() > 5 &&
                path.compare(path.size() - 5, 5, ".qasm") == 0;
    Circuit c = qasm ? parseOpenQasm(ss.str(), diags)
                     : compileScaffLite(ss.str(), diags);
    if (diags.hasErrors()) {
        std::cerr << diags.text();
        fatal("triq-sweep: ", diags.errorCount(), " error(s) in '", path,
              "'");
    }
    return c;
}

Device
deviceByName(const std::string &name)
{
    for (Device &d : allStudyDevices())
        if (d.name() == name)
            return d;
    // The 72-qubit scaling-study grid: addressable by name, but not
    // part of "device all" (that keeps the paper's 7-machine grid).
    if (name == "Google72")
        return makeGoogle72();
    fatal("triq-sweep: unknown device '", name,
          "' (see triqc --list-devices)");
}

/** Parse "0..6" or a single integer into `out`. */
void
parseDays(std::istringstream &rest, std::vector<int> &out)
{
    std::string tok;
    while (rest >> tok) {
        auto dots = tok.find("..");
        if (dots != std::string::npos) {
            int lo = std::stoi(tok.substr(0, dots));
            int hi = std::stoi(tok.substr(dots + 2));
            if (hi < lo)
                fatal("triq-sweep: bad day range '", tok, "'");
            for (int d = lo; d <= hi; ++d)
                out.push_back(d);
        } else {
            out.push_back(std::stoi(tok));
        }
    }
}

SweepConfig
loadManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("triq-sweep: cannot open manifest '", path, "'");
    SweepConfig cfg;
    double budget_ms = 0.0;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "program") {
            std::string val;
            while (ls >> val) {
                if (val == "all") {
                    for (const std::string &n : benchmarkNames())
                        cfg.programs.push_back({n, makeBenchmark(n)});
                } else if (val.rfind("file:", 0) == 0) {
                    std::string p = val.substr(5);
                    cfg.programs.push_back({p, loadProgramFile(p)});
                } else {
                    cfg.programs.push_back({val, makeBenchmark(val)});
                }
            }
        } else if (key == "device") {
            std::string val;
            while (ls >> val) {
                if (val == "all")
                    for (Device &d : allStudyDevices())
                        cfg.devices.push_back(std::move(d));
                else
                    cfg.devices.push_back(deviceByName(val));
            }
        } else if (key == "days") {
            parseDays(ls, cfg.days);
        } else if (key == "level") {
            std::string val;
            while (ls >> val) {
                if (val == "all")
                    cfg.levels.insert(cfg.levels.end(),
                                      {OptLevel::N, OptLevel::OneQOpt,
                                       OptLevel::OneQOptC,
                                       OptLevel::OneQOptCN});
                else
                    cfg.levels.push_back(parseLevel(val));
            }
        } else if (key == "drift") {
            ls >> cfg.driftThreshold;
        } else if (key == "journal") {
            ls >> cfg.journalPath;
        } else if (key == "threads") {
            ls >> cfg.threads;
        } else if (key == "budget_ms") {
            ls >> budget_ms;
        } else if (key == "cache") {
            int v = 1;
            ls >> v;
            cfg.useCache = v != 0;
        } else if (key == "strict_calibration") {
            int v = 1;
            ls >> v;
            cfg.options.strictCalibration = v != 0;
        } else {
            fatal("triq-sweep: ", path, ":", lineno,
                  ": unknown directive '", key, "'");
        }
    }
    if (budget_ms > 0.0)
        cfg.options.budget = CompileBudget::withDeadlineMs(budget_ms);
    if (cfg.days.empty())
        cfg.days.push_back(0);
    if (cfg.levels.empty())
        cfg.levels.push_back(OptLevel::OneQOptCN);
    return cfg;
}

void
usage()
{
    std::cerr
        << "usage: triq-sweep --manifest FILE [options]\n"
           "  --manifest FILE   sweep grid description (required)\n"
           "  -o, --json FILE   write the results matrix here (default\n"
           "                    stdout)\n"
           "  --threads N       worker threads; 0 = adaptive (default:\n"
           "                    TRIQ_SWEEP_THREADS, else adaptive —\n"
           "                    the cost model decides per day)\n"
           "  --drift T         reuse CN artifacts whose predicted ESP\n"
           "                    degraded <= T (relative); default off\n"
           "  --no-cache        disable the compile cache\n"
           "  --journal FILE    append every resolved cell to a\n"
           "                    crash-safe fsync'd JSONL journal (also\n"
           "                    switches the matrix to deterministic\n"
           "                    mode: no wall-clock fields)\n"
           "  --resume          restore finished cells from --journal\n"
           "                    instead of recomputing them\n";
}

int
run(int argc, char **argv)
{
    std::string manifest, out_path, journal_path;
    int threads = -1;
    double drift = -3.0;
    bool no_cache = false;
    bool resume = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("triq-sweep: ", arg, " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(arg, "--manifest"))
            manifest = next();
        else if (!std::strcmp(arg, "-o") || !std::strcmp(arg, "--json"))
            out_path = next();
        else if (!std::strcmp(arg, "--threads"))
            threads = std::atoi(next());
        else if (!std::strcmp(arg, "--drift"))
            drift = std::atof(next());
        else if (!std::strcmp(arg, "--no-cache"))
            no_cache = true;
        else if (!std::strcmp(arg, "--journal"))
            journal_path = next();
        else if (!std::strcmp(arg, "--resume"))
            resume = true;
        else if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
            usage();
            return 0;
        } else {
            fatal("triq-sweep: unknown option '", arg, "'");
        }
    }
    if (manifest.empty()) {
        usage();
        return 1;
    }

    SweepConfig cfg = loadManifest(manifest);
    if (threads >= 0)
        cfg.threads = threads;
    if (drift > -3.0)
        cfg.driftThreshold = drift;
    if (no_cache)
        cfg.useCache = false;
    if (!journal_path.empty())
        cfg.journalPath = journal_path;
    cfg.resume = resume;
    if (resume && cfg.journalPath.empty())
        fatal("triq-sweep: --resume needs --journal FILE (or a "
              "'journal' manifest directive)");
    if (cfg.programs.empty())
        fatal("triq-sweep: manifest lists no programs");
    if (cfg.devices.empty())
        fatal("triq-sweep: manifest lists no devices");

    CompileCache cache;
    SweepResult res = runSweep(cfg, &cache);

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file)
            fatal("triq-sweep: cannot write '", out_path, "'");
        os = &file;
    }
    CompileCache::Stats cs = cache.stats();
    writeSweepMatrix(*os, cfg, res, &cs, !cfg.journalPath.empty());

    std::cerr << "triq-sweep: " << res.stats.cells << " cells ("
              << res.stats.compiles << " compiled, "
              << res.stats.cacheHits << " cache hits, "
              << res.stats.driftReuses << " drift reuses, "
              << res.stats.skipped << " skipped, "
              << res.stats.errors << " errors) in "
              << res.stats.wallMs << " ms on " << res.stats.threads
              << " thread(s)\n";
    if (res.stats.restoredCells > 0)
        std::cerr << "triq-sweep: " << res.stats.restoredCells
                  << " cell(s) restored from journal '" << cfg.journalPath
                  << "'\n";
    // Partial-failure contract: the matrix above is complete (failed
    // cells carry structured "error" entries) but the run did not fully
    // succeed — exit 1 (user-input error), never 2 (that would claim a
    // TriQ bug).
    if (res.stats.errors > 0) {
        std::cerr << "triq-sweep: " << res.stats.errors
                  << " cell(s) failed; results are partial\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace triq

int
main(int argc, char **argv)
{
    try {
        return triq::run(argc, argv);
    } catch (const triq::FatalError &) {
        return 1;
    } catch (const triq::PanicError &) {
        return 2;
    }
}
