/**
 * @file
 * triq-calgen — calibration snapshot generator.
 *
 * Emits a device's calibration for a given day (or its noise-unaware
 * average) in the text format Calibration::load accepts, mirroring the
 * daily data feeds the paper consumed from the vendors. Useful for
 * pinning an experiment to a snapshot, editing error rates by hand, or
 * feeding external calibration data into triqc via --calibration.
 *
 * Usage:
 *   triq-calgen -d IBMQ14 --day 5            # to stdout
 *   triq-calgen -d UMDTI --average -o cal.txt
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "common/logging.hh"
#include "device/machines.hh"

using namespace triq;

int
main(int argc, char **argv)
{
    try {
        std::string device = "IBMQ5";
        std::string output;
        int day = 0;
        bool average = false;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            auto need_value = [&](const char *flag) -> const char * {
                if (i + 1 >= argc)
                    fatal("triq-calgen: ", flag, " needs a value");
                return argv[++i];
            };
            if (!std::strcmp(arg, "-d") ||
                !std::strcmp(arg, "--device"))
                device = need_value(arg);
            else if (!std::strcmp(arg, "--day"))
                day = std::atoi(need_value(arg));
            else if (!std::strcmp(arg, "--average"))
                average = true;
            else if (!std::strcmp(arg, "-o"))
                output = need_value(arg);
            else if (!std::strcmp(arg, "-h") ||
                     !std::strcmp(arg, "--help")) {
                std::cerr << "usage: triq-calgen -d DEVICE "
                             "[--day N | --average] [-o FILE]\n";
                return 0;
            } else {
                fatal("triq-calgen: unknown option '", arg, "'");
            }
        }
        Device dev = [&] {
            for (auto &d : allStudyDevices())
                if (d.name() == device)
                    return d;
            fatal("triq-calgen: unknown device '", device, "'");
        }();
        Calibration calib =
            average ? dev.averageCalibration() : dev.calibrate(day);
        if (output.empty()) {
            calib.save(std::cout);
        } else {
            std::ofstream out(output);
            if (!out)
                fatal("triq-calgen: cannot write '", output, "'");
            calib.save(out);
        }
        return 0;
    } catch (const FatalError &) {
        return 1; // message already printed by fatal()
    } catch (const PanicError &) {
        return 2; // internal invariant violation, printed by panic()
    } catch (const std::exception &e) {
        std::cerr << "triq-calgen: internal error: " << e.what() << "\n";
        return 2;
    } catch (...) {
        std::cerr << "triq-calgen: internal error: unknown exception\n";
        return 2;
    }
}
